#include "sqlengine/parser.h"

#include <utility>
#include <vector>

#include "common/string_util.h"
#include "sqlengine/lexer.h"

namespace codes::sql {

namespace {

/// Maximum combined nesting depth of SELECTs and expressions. Each level
/// of the recursive-descent parser costs several stack frames (ParseExpr
/// alone chains through ~8 precedence levels before recursing), so deeply
/// nested input like "((((...1...))))" or a long subquery chain would
/// otherwise overflow the stack. 200 is far beyond any benchmark query
/// while keeping worst-case stack use to a couple of megabytes even under
/// sanitizers. The executor enforces its own, separate runtime depth
/// budget via ExecGuard.
constexpr int kMaxParseDepth = 200;

/// Recursive-descent parser over the token stream. All Parse* methods
/// return a Result; the first error aborts the parse.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseStatement() {
    CODES_ASSIGN_OR_RETURN(auto stmt, ParseSelect());
    // Optional trailing semicolon.
    if (PeekSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  /// Counts one level of parser recursion for the lifetime of a Parse*
  /// call. The depth check itself lives in EnterNesting().
  class DepthGuard {
   public:
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    int* depth_;
  };

  Status CheckDepth() const {
    if (depth_ > kMaxParseDepth) {
      return Status::ParseError("query nesting exceeds depth limit (" +
                                std::to_string(kMaxParseDepth) + ")");
    }
    return Status::Ok();
  }

  const Token& Peek(int lookahead = 0) const {
    size_t idx = pos_ + static_cast<size_t>(lookahead);
    if (idx >= tokens_.size()) return tokens_.back();
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw, int lookahead = 0) const {
    const Token& t = Peek(lookahead);
    return t.kind == TokenKind::kKeyword && t.text == kw;
  }
  bool PeekSymbol(std::string_view sym, int lookahead = 0) const {
    const Token& t = Peek(lookahead);
    return t.kind == TokenKind::kSymbol && t.text == sym;
  }
  bool AcceptKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view sym) {
    if (PeekSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + " but found '" +
                                Peek().text + "'");
    }
    return Status::Ok();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError("expected '" + std::string(sym) +
                                "' but found '" + Peek().text + "'");
    }
    return Status::Ok();
  }
  Status Error(std::string msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    DepthGuard depth(&depth_);
    CODES_RETURN_IF_ERROR(CheckDepth());
    auto stmt = std::make_unique<SelectStatement>();
    CODES_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (AcceptKeyword("DISTINCT")) stmt->distinct = true;

    // Select list.
    while (true) {
      SelectItem item;
      CODES_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !PeekKeyword("FROM")) {
        // Bare alias ("SELECT name n FROM ...") — accepted like SQLite.
        item.alias = Advance().text;
      }
      stmt->select_list.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }

    CODES_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    CODES_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());

    // Joins.
    while (true) {
      bool is_join = false;
      if (PeekKeyword("JOIN")) {
        Advance();
        is_join = true;
      } else if (PeekKeyword("INNER") && PeekKeyword("JOIN", 1)) {
        Advance();
        Advance();
        is_join = true;
      } else if (PeekKeyword("LEFT")) {
        // LEFT [OUTER] JOIN accepted and executed as inner join; the
        // engine's workloads are FK joins where the two coincide.
        Advance();
        if (Peek().kind == TokenKind::kIdentifier &&
            ToUpper(Peek().text) == "OUTER") {
          Advance();
        }
        CODES_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        is_join = true;
      }
      if (!is_join) break;
      JoinClause join;
      CODES_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      if (AcceptKeyword("ON")) {
        CODES_ASSIGN_OR_RETURN(join.condition, ParseExpr());
      }
      stmt->joins.push_back(std::move(join));
    }

    if (AcceptKeyword("WHERE")) {
      CODES_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }

    if (AcceptKeyword("GROUP")) {
      CODES_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        CODES_ASSIGN_OR_RETURN(auto expr, ParseExpr());
        stmt->group_by.push_back(std::move(expr));
        if (!AcceptSymbol(",")) break;
      }
    }

    if (AcceptKeyword("HAVING")) {
      CODES_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }

    if (AcceptKeyword("ORDER")) {
      CODES_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        CODES_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }

    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = Advance().int_value;
    }

    // Set operations.
    if (AcceptKeyword("UNION")) {
      stmt->set_op = AcceptKeyword("ALL") ? SetOp::kUnionAll : SetOp::kUnion;
    } else if (AcceptKeyword("INTERSECT")) {
      stmt->set_op = SetOp::kIntersect;
    } else if (AcceptKeyword("EXCEPT")) {
      stmt->set_op = SetOp::kExcept;
    }
    if (stmt->set_op != SetOp::kNone) {
      CODES_ASSIGN_OR_RETURN(stmt->set_rhs, ParseSelect());
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected table name, found '" + Peek().text + "'");
    }
    TableRef ref;
    ref.table = Advance().text;
    if (AcceptKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // Expression precedence (lowest first): OR, AND, NOT, comparison/IN/
  // BETWEEN/LIKE/IS, additive/concat, multiplicative, unary, primary.
  // Nesting depth is charged once per ParseExpr entry, which bounds the
  // whole precedence chain below it.
  Result<std::unique_ptr<Expr>> ParseExpr() {
    DepthGuard depth(&depth_);
    CODES_RETURN_IF_ERROR(CheckDepth());
    return ParseOr();
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    CODES_ASSIGN_OR_RETURN(auto node, ParseAnd());
    while (AcceptKeyword("OR")) {
      CODES_ASSIGN_OR_RETURN(auto right, ParseAnd());
      node = Expr::MakeBinary(BinaryOp::kOr, std::move(node),
                              std::move(right));
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    CODES_ASSIGN_OR_RETURN(auto node, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      CODES_ASSIGN_OR_RETURN(auto right, ParseNot());
      node = Expr::MakeBinary(BinaryOp::kAnd, std::move(node),
                              std::move(right));
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (AcceptKeyword("NOT")) {
      // NOT chains recurse without passing through ParseExpr; charge depth
      // here too so "NOT NOT NOT ..." stays bounded.
      DepthGuard depth(&depth_);
      CODES_RETURN_IF_ERROR(CheckDepth());
      CODES_ASSIGN_OR_RETURN(auto inner, ParseNot());
      return Expr::MakeUnary(UnaryOp::kNot, std::move(inner));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    CODES_ASSIGN_OR_RETURN(auto node, ParseAdditive());

    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negate = AcceptKeyword("NOT");
      CODES_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return Expr::MakeUnary(negate ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                             std::move(node));
    }

    bool negated = false;
    if (PeekKeyword("NOT") &&
        (PeekKeyword("IN", 1) || PeekKeyword("BETWEEN", 1) ||
         PeekKeyword("LIKE", 1))) {
      Advance();
      negated = true;
    }

    if (AcceptKeyword("BETWEEN")) {
      CODES_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
      CODES_RETURN_IF_ERROR(ExpectKeyword("AND"));
      CODES_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(node));
      e->children.push_back(std::move(lo));
      e->children.push_back(std::move(hi));
      return e;
    }

    if (AcceptKeyword("IN")) {
      CODES_RETURN_IF_ERROR(ExpectSymbol("("));
      if (PeekKeyword("SELECT")) {
        CODES_ASSIGN_OR_RETURN(auto sub, ParseSelect());
        CODES_RETURN_IF_ERROR(ExpectSymbol(")"));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kInSubquery;
        e->negated = negated;
        e->children.push_back(std::move(node));
        e->subquery = std::move(sub);
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(std::move(node));
      while (true) {
        // Negative numbers serialize as "-5"; accept the sign here since
        // IN-list members are literals, not full expressions.
        bool minus = AcceptSymbol("-");
        const Token& t = Peek();
        if (!minus && t.kind == TokenKind::kString) {
          e->in_list.emplace_back(Advance().text);
        } else if (t.kind == TokenKind::kInteger) {
          int64_t v = Advance().int_value;
          e->in_list.emplace_back(minus ? -v : v);
        } else if (t.kind == TokenKind::kReal) {
          double v = Advance().real_value;
          e->in_list.emplace_back(minus ? -v : v);
        } else if (!minus && t.kind == TokenKind::kKeyword &&
                   t.text == "NULL") {
          Advance();
          e->in_list.emplace_back();
        } else {
          return Error("expected literal in IN list");
        }
        if (!AcceptSymbol(",")) break;
      }
      CODES_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }

    if (AcceptKeyword("LIKE")) {
      CODES_ASSIGN_OR_RETURN(auto right, ParseAdditive());
      return Expr::MakeBinary(negated ? BinaryOp::kNotLike : BinaryOp::kLike,
                              std::move(node), std::move(right));
    }
    if (negated) return Error("dangling NOT");

    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (PeekSymbol(sym)) {
        Advance();
        CODES_ASSIGN_OR_RETURN(auto right, ParseAdditive());
        return Expr::MakeBinary(op, std::move(node), std::move(right));
      }
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    CODES_ASSIGN_OR_RETURN(auto node, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (PeekSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (PeekSymbol("-")) {
        op = BinaryOp::kSub;
      } else if (PeekSymbol("||")) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      Advance();
      CODES_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
      node = Expr::MakeBinary(op, std::move(node), std::move(right));
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    CODES_ASSIGN_OR_RETURN(auto node, ParseUnary());
    while (true) {
      BinaryOp op;
      if (PeekSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (PeekSymbol("/")) {
        op = BinaryOp::kDiv;
      } else {
        break;
      }
      Advance();
      CODES_ASSIGN_OR_RETURN(auto right, ParseUnary());
      node = Expr::MakeBinary(op, std::move(node), std::move(right));
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (AcceptSymbol("-")) {
      // "- - - ... 1" recurses here without a ParseExpr in between.
      DepthGuard depth(&depth_);
      CODES_RETURN_IF_ERROR(CheckDepth());
      CODES_ASSIGN_OR_RETURN(auto inner, ParseUnary());
      return Expr::MakeUnary(UnaryOp::kNegate, std::move(inner));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    // Literals.
    if (t.kind == TokenKind::kString) {
      return Expr::MakeLiteral(Value(Advance().text));
    }
    if (t.kind == TokenKind::kInteger) {
      return Expr::MakeLiteral(Value(Advance().int_value));
    }
    if (t.kind == TokenKind::kReal) {
      return Expr::MakeLiteral(Value(Advance().real_value));
    }
    if (t.kind == TokenKind::kKeyword && t.text == "NULL") {
      Advance();
      return Expr::MakeLiteral(Value());
    }
    // Star.
    if (PeekSymbol("*")) {
      Advance();
      return Expr::MakeStar();
    }
    // Parenthesized expression or scalar subquery.
    if (PeekSymbol("(")) {
      Advance();
      if (PeekKeyword("SELECT")) {
        CODES_ASSIGN_OR_RETURN(auto sub, ParseSelect());
        CODES_RETURN_IF_ERROR(ExpectSymbol(")"));
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kScalarSubquery;
        e->subquery = std::move(sub);
        return e;
      }
      CODES_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      CODES_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    // CAST(expr AS type).
    if (t.kind == TokenKind::kKeyword && t.text == "CAST") {
      Advance();
      CODES_RETURN_IF_ERROR(ExpectSymbol("("));
      CODES_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      CODES_RETURN_IF_ERROR(ExpectKeyword("AS"));
      DataType type;
      if (AcceptKeyword("INTEGER")) {
        type = DataType::kInteger;
      } else if (AcceptKeyword("REAL")) {
        type = DataType::kReal;
      } else if (AcceptKeyword("TEXT")) {
        type = DataType::kText;
      } else {
        return Error("expected type name in CAST");
      }
      CODES_RETURN_IF_ERROR(ExpectSymbol(")"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      e->cast_type = type;
      e->children.push_back(std::move(inner));
      return e;
    }
    // Aggregate keywords used as function names.
    if (t.kind == TokenKind::kKeyword &&
        (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" ||
         t.text == "MIN" || t.text == "MAX")) {
      std::string name = Advance().text;
      return ParseFunctionCall(name);
    }
    // Identifier: column ref or scalar function call.
    if (t.kind == TokenKind::kIdentifier) {
      std::string first = Advance().text;
      if (PeekSymbol("(")) {
        return ParseFunctionCall(ToUpper(first));
      }
      if (PeekSymbol(".")) {
        Advance();
        if (PeekSymbol("*")) {
          Advance();
          // table.* — expands to that table's columns at execution time.
          auto e = Expr::MakeStar();
          e->table = first;
          return e;
        }
        if (Peek().kind != TokenKind::kIdentifier &&
            Peek().kind != TokenKind::kKeyword) {
          return Error("expected column name after '.'");
        }
        std::string column = Advance().text;
        return Expr::MakeColumn(first, column);
      }
      return Expr::MakeColumn("", first);
    }
    return Error("unexpected token '" + t.text + "'");
  }

  Result<std::unique_ptr<Expr>> ParseFunctionCall(std::string name) {
    CODES_RETURN_IF_ERROR(ExpectSymbol("("));
    bool distinct = AcceptKeyword("DISTINCT");
    std::vector<std::unique_ptr<Expr>> args;
    if (!PeekSymbol(")")) {
      while (true) {
        CODES_ASSIGN_OR_RETURN(auto arg, ParseExpr());
        args.push_back(std::move(arg));
        if (!AcceptSymbol(",")) break;
      }
    }
    CODES_RETURN_IF_ERROR(ExpectSymbol(")"));
    return Expr::MakeFunction(std::move(name), std::move(args), distinct);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  ///< current SELECT/expression nesting depth
};

}  // namespace

Result<std::unique_ptr<SelectStatement>> ParseSql(std::string_view sql) {
  auto tokens = LexSql(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace codes::sql
