#include "sqlengine/parser.h"

#include <utility>
#include <vector>

#include "common/string_util.h"
#include "sqlengine/lexer.h"

namespace codes::sql {

namespace {

/// Recursive-descent parser over the token stream. All Parse* methods
/// return a Result; the first error aborts the parse.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStatement>> ParseStatement() {
    auto stmt = ParseSelect();
    if (!stmt.ok()) return stmt.status();
    // Optional trailing semicolon.
    if (PeekSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return std::move(stmt).value();
  }

 private:
  const Token& Peek(int lookahead = 0) const {
    size_t idx = pos_ + static_cast<size_t>(lookahead);
    if (idx >= tokens_.size()) return tokens_.back();
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw, int lookahead = 0) const {
    const Token& t = Peek(lookahead);
    return t.kind == TokenKind::kKeyword && t.text == kw;
  }
  bool PeekSymbol(std::string_view sym, int lookahead = 0) const {
    const Token& t = Peek(lookahead);
    return t.kind == TokenKind::kSymbol && t.text == sym;
  }
  bool AcceptKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view sym) {
    if (PeekSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + " but found '" +
                                Peek().text + "'");
    }
    return Status::Ok();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError("expected '" + std::string(sym) +
                                "' but found '" + Peek().text + "'");
    }
    return Status::Ok();
  }
  Status Error(std::string msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().offset) + ")");
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    auto stmt = std::make_unique<SelectStatement>();
    Status s = ExpectKeyword("SELECT");
    if (!s.ok()) return s;
    if (AcceptKeyword("DISTINCT")) stmt->distinct = true;

    // Select list.
    while (true) {
      SelectItem item;
      auto expr = ParseExpr();
      if (!expr.ok()) return expr.status();
      item.expr = std::move(expr).value();
      if (AcceptKeyword("AS")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 !PeekKeyword("FROM")) {
        // Bare alias ("SELECT name n FROM ...") — accepted like SQLite.
        item.alias = Advance().text;
      }
      stmt->select_list.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }

    s = ExpectKeyword("FROM");
    if (!s.ok()) return s;
    auto from = ParseTableRef();
    if (!from.ok()) return from.status();
    stmt->from = std::move(from).value();

    // Joins.
    while (true) {
      bool is_join = false;
      if (PeekKeyword("JOIN")) {
        Advance();
        is_join = true;
      } else if (PeekKeyword("INNER") && PeekKeyword("JOIN", 1)) {
        Advance();
        Advance();
        is_join = true;
      } else if (PeekKeyword("LEFT")) {
        // LEFT [OUTER] JOIN accepted and executed as inner join; the
        // engine's workloads are FK joins where the two coincide.
        Advance();
        if (Peek().kind == TokenKind::kIdentifier &&
            ToUpper(Peek().text) == "OUTER") {
          Advance();
        }
        Status sj = ExpectKeyword("JOIN");
        if (!sj.ok()) return sj;
        is_join = true;
      }
      if (!is_join) break;
      JoinClause join;
      auto table = ParseTableRef();
      if (!table.ok()) return table.status();
      join.table = std::move(table).value();
      if (AcceptKeyword("ON")) {
        auto cond = ParseExpr();
        if (!cond.ok()) return cond.status();
        join.condition = std::move(cond).value();
      }
      stmt->joins.push_back(std::move(join));
    }

    if (AcceptKeyword("WHERE")) {
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      stmt->where = std::move(cond).value();
    }

    if (AcceptKeyword("GROUP")) {
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      while (true) {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        stmt->group_by.push_back(std::move(expr).value());
        if (!AcceptSymbol(",")) break;
      }
    }

    if (AcceptKeyword("HAVING")) {
      auto cond = ParseExpr();
      if (!cond.ok()) return cond.status();
      stmt->having = std::move(cond).value();
    }

    if (AcceptKeyword("ORDER")) {
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      while (true) {
        OrderItem item;
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(expr).value();
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }

    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = Advance().int_value;
    }

    // Set operations.
    if (AcceptKeyword("UNION")) {
      stmt->set_op = AcceptKeyword("ALL") ? SetOp::kUnionAll : SetOp::kUnion;
    } else if (AcceptKeyword("INTERSECT")) {
      stmt->set_op = SetOp::kIntersect;
    } else if (AcceptKeyword("EXCEPT")) {
      stmt->set_op = SetOp::kExcept;
    }
    if (stmt->set_op != SetOp::kNone) {
      auto rhs = ParseSelect();
      if (!rhs.ok()) return rhs.status();
      stmt->set_rhs = std::move(rhs).value();
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected table name, found '" + Peek().text + "'");
    }
    TableRef ref;
    ref.table = Advance().text;
    if (AcceptKeyword("AS")) {
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdentifier) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  // Expression precedence (lowest first): OR, AND, NOT, comparison/IN/
  // BETWEEN/LIKE/IS, additive/concat, multiplicative, unary, primary.
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left.status();
    auto node = std::move(left).value();
    while (AcceptKeyword("OR")) {
      auto right = ParseAnd();
      if (!right.ok()) return right.status();
      node = Expr::MakeBinary(BinaryOp::kOr, std::move(node),
                              std::move(right).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    auto left = ParseNot();
    if (!left.ok()) return left.status();
    auto node = std::move(left).value();
    while (PeekKeyword("AND")) {
      Advance();
      auto right = ParseNot();
      if (!right.ok()) return right.status();
      node = Expr::MakeBinary(BinaryOp::kAnd, std::move(node),
                              std::move(right).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (AcceptKeyword("NOT")) {
      auto inner = ParseNot();
      if (!inner.ok()) return inner.status();
      return Expr::MakeUnary(UnaryOp::kNot, std::move(inner).value());
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    auto left = ParseAdditive();
    if (!left.ok()) return left.status();
    auto node = std::move(left).value();

    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negate = AcceptKeyword("NOT");
      Status s = ExpectKeyword("NULL");
      if (!s.ok()) return s;
      return Expr::MakeUnary(negate ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                             std::move(node));
    }

    bool negated = false;
    if (PeekKeyword("NOT") &&
        (PeekKeyword("IN", 1) || PeekKeyword("BETWEEN", 1) ||
         PeekKeyword("LIKE", 1))) {
      Advance();
      negated = true;
    }

    if (AcceptKeyword("BETWEEN")) {
      auto lo = ParseAdditive();
      if (!lo.ok()) return lo.status();
      Status s = ExpectKeyword("AND");
      if (!s.ok()) return s;
      auto hi = ParseAdditive();
      if (!hi.ok()) return hi.status();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(node));
      e->children.push_back(std::move(lo).value());
      e->children.push_back(std::move(hi).value());
      return e;
    }

    if (AcceptKeyword("IN")) {
      Status s = ExpectSymbol("(");
      if (!s.ok()) return s;
      if (PeekKeyword("SELECT")) {
        auto sub = ParseSelect();
        if (!sub.ok()) return sub.status();
        s = ExpectSymbol(")");
        if (!s.ok()) return s;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kInSubquery;
        e->negated = negated;
        e->children.push_back(std::move(node));
        e->subquery = std::move(sub).value();
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(std::move(node));
      while (true) {
        // Negative numbers serialize as "-5"; accept the sign here since
        // IN-list members are literals, not full expressions.
        bool minus = AcceptSymbol("-");
        const Token& t = Peek();
        if (!minus && t.kind == TokenKind::kString) {
          e->in_list.emplace_back(Advance().text);
        } else if (t.kind == TokenKind::kInteger) {
          int64_t v = Advance().int_value;
          e->in_list.emplace_back(minus ? -v : v);
        } else if (t.kind == TokenKind::kReal) {
          double v = Advance().real_value;
          e->in_list.emplace_back(minus ? -v : v);
        } else if (!minus && t.kind == TokenKind::kKeyword &&
                   t.text == "NULL") {
          Advance();
          e->in_list.emplace_back();
        } else {
          return Error("expected literal in IN list");
        }
        if (!AcceptSymbol(",")) break;
      }
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      return e;
    }

    if (AcceptKeyword("LIKE")) {
      auto right = ParseAdditive();
      if (!right.ok()) return right.status();
      return Expr::MakeBinary(negated ? BinaryOp::kNotLike : BinaryOp::kLike,
                              std::move(node), std::move(right).value());
    }
    if (negated) return Error("dangling NOT");

    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static constexpr OpMap kOps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (PeekSymbol(sym)) {
        Advance();
        auto right = ParseAdditive();
        if (!right.ok()) return right.status();
        return Expr::MakeBinary(op, std::move(node), std::move(right).value());
      }
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    auto left = ParseMultiplicative();
    if (!left.ok()) return left.status();
    auto node = std::move(left).value();
    while (true) {
      BinaryOp op;
      if (PeekSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (PeekSymbol("-")) {
        op = BinaryOp::kSub;
      } else if (PeekSymbol("||")) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      Advance();
      auto right = ParseMultiplicative();
      if (!right.ok()) return right.status();
      node = Expr::MakeBinary(op, std::move(node), std::move(right).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    auto left = ParseUnary();
    if (!left.ok()) return left.status();
    auto node = std::move(left).value();
    while (true) {
      BinaryOp op;
      if (PeekSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (PeekSymbol("/")) {
        op = BinaryOp::kDiv;
      } else {
        break;
      }
      Advance();
      auto right = ParseUnary();
      if (!right.ok()) return right.status();
      node = Expr::MakeBinary(op, std::move(node), std::move(right).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (AcceptSymbol("-")) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      return Expr::MakeUnary(UnaryOp::kNegate, std::move(inner).value());
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    // Literals.
    if (t.kind == TokenKind::kString) {
      return Expr::MakeLiteral(Value(Advance().text));
    }
    if (t.kind == TokenKind::kInteger) {
      return Expr::MakeLiteral(Value(Advance().int_value));
    }
    if (t.kind == TokenKind::kReal) {
      return Expr::MakeLiteral(Value(Advance().real_value));
    }
    if (t.kind == TokenKind::kKeyword && t.text == "NULL") {
      Advance();
      return Expr::MakeLiteral(Value());
    }
    // Star.
    if (PeekSymbol("*")) {
      Advance();
      return Expr::MakeStar();
    }
    // Parenthesized expression or scalar subquery.
    if (PeekSymbol("(")) {
      Advance();
      if (PeekKeyword("SELECT")) {
        auto sub = ParseSelect();
        if (!sub.ok()) return sub.status();
        Status s = ExpectSymbol(")");
        if (!s.ok()) return s;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kScalarSubquery;
        e->subquery = std::move(sub).value();
        return e;
      }
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      Status s = ExpectSymbol(")");
      if (!s.ok()) return s;
      return std::move(inner).value();
    }
    // CAST(expr AS type).
    if (t.kind == TokenKind::kKeyword && t.text == "CAST") {
      Advance();
      Status s = ExpectSymbol("(");
      if (!s.ok()) return s;
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      s = ExpectKeyword("AS");
      if (!s.ok()) return s;
      DataType type;
      if (AcceptKeyword("INTEGER")) {
        type = DataType::kInteger;
      } else if (AcceptKeyword("REAL")) {
        type = DataType::kReal;
      } else if (AcceptKeyword("TEXT")) {
        type = DataType::kText;
      } else {
        return Error("expected type name in CAST");
      }
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      e->cast_type = type;
      e->children.push_back(std::move(inner).value());
      return e;
    }
    // Aggregate keywords used as function names.
    if (t.kind == TokenKind::kKeyword &&
        (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" ||
         t.text == "MIN" || t.text == "MAX")) {
      std::string name = Advance().text;
      return ParseFunctionCall(name);
    }
    // Identifier: column ref or scalar function call.
    if (t.kind == TokenKind::kIdentifier) {
      std::string first = Advance().text;
      if (PeekSymbol("(")) {
        return ParseFunctionCall(ToUpper(first));
      }
      if (PeekSymbol(".")) {
        Advance();
        if (PeekSymbol("*")) {
          Advance();
          // table.* — expands to that table's columns at execution time.
          auto e = Expr::MakeStar();
          e->table = first;
          return e;
        }
        if (Peek().kind != TokenKind::kIdentifier &&
            Peek().kind != TokenKind::kKeyword) {
          return Error("expected column name after '.'");
        }
        std::string column = Advance().text;
        return Expr::MakeColumn(first, column);
      }
      return Expr::MakeColumn("", first);
    }
    return Error("unexpected token '" + t.text + "'");
  }

  Result<std::unique_ptr<Expr>> ParseFunctionCall(std::string name) {
    Status s = ExpectSymbol("(");
    if (!s.ok()) return s;
    bool distinct = AcceptKeyword("DISTINCT");
    std::vector<std::unique_ptr<Expr>> args;
    if (!PeekSymbol(")")) {
      while (true) {
        auto arg = ParseExpr();
        if (!arg.ok()) return arg.status();
        args.push_back(std::move(arg).value());
        if (!AcceptSymbol(",")) break;
      }
    }
    s = ExpectSymbol(")");
    if (!s.ok()) return s;
    return Expr::MakeFunction(std::move(name), std::move(args), distinct);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStatement>> ParseSql(std::string_view sql) {
  auto tokens = LexSql(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseStatement();
}

}  // namespace codes::sql
