#ifndef CODES_SQLENGINE_CATALOG_H_
#define CODES_SQLENGINE_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "sqlengine/value.h"

namespace codes::sql {

/// Column definition with the metadata the paper's prompt construction
/// consumes: type, human comment (for ambiguous names), and PK flag.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kText;
  std::string comment;          ///< NL description; may be empty.
  bool is_primary_key = false;
};

/// Table definition (columns + optional comment).
struct TableDef {
  std::string name;
  std::string comment;
  std::vector<ColumnDef> columns;

  /// Index of `column_name` (case-insensitive) or nullopt.
  std::optional<int> FindColumn(const std::string& column_name) const;
};

/// A foreign-key edge: `table.column` references `ref_table.ref_column`.
struct ForeignKey {
  std::string table;
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

/// Full database schema: tables, columns, and key relationships. This is
/// the `D_schema`/`D_meta` input of Algorithm 1 in the paper.
struct DatabaseSchema {
  std::string name;
  std::vector<TableDef> tables;
  std::vector<ForeignKey> foreign_keys;

  /// Index of `table_name` (case-insensitive) or nullopt.
  std::optional<int> FindTable(const std::string& table_name) const;

  /// Total number of columns across all tables.
  int TotalColumns() const;

  /// All FKs with either endpoint in `table_name`.
  std::vector<ForeignKey> ForeignKeysOf(const std::string& table_name) const;

  /// Serializes the schema as CREATE TABLE DDL text (used by examples and
  /// the NL-to-code corpus generator).
  std::string ToDdl() const;
};

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_CATALOG_H_
