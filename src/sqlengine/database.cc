#include "sqlengine/database.h"

namespace codes::sql {
namespace {

// Cursor over an in-memory table's row vector, in insertion order.
class VectorCursor final : public RowCursor {
 public:
  explicit VectorCursor(const std::vector<Row>* rows) : rows_(rows) {}

  bool Next(Row* out) override {
    if (pos_ >= rows_->size()) return false;
    *out = (*rows_)[pos_++];
    return true;
  }

 private:
  const std::vector<Row>* rows_;
  size_t pos_ = 0;
};

}  // namespace

Database::Database(DatabaseSchema schema) : schema_(std::move(schema)) {
  tables_.resize(schema_.tables.size());
}

std::unique_ptr<RowCursor> Database::Scan(int table_index) const {
  return std::make_unique<VectorCursor>(&tables_[table_index].rows);
}

Status Database::Insert(const std::string& table_name,
                        std::vector<Value> row) {
  auto idx = schema_.FindTable(table_name);
  if (!idx.has_value()) {
    return Status::NotFound("no such table: " + table_name);
  }
  const TableDef& def = schema_.tables[*idx];
  if (row.size() != def.columns.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        table_name + " with " + std::to_string(def.columns.size()) +
        " columns");
  }
  tables_[*idx].rows.push_back(std::move(row));
  return Status::Ok();
}

size_t Database::RowCount(const std::string& table_name) const {
  auto idx = schema_.FindTable(table_name);
  if (!idx.has_value()) return 0;
  return tables_[*idx].rows.size();
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t.rows.size();
  return n;
}

size_t Database::TotalValues() const {
  size_t n = 0;
  for (const auto& t : tables_) {
    for (const auto& row : t.rows) {
      for (const auto& v : row) {
        if (!v.is_null()) ++n;
      }
    }
  }
  return n;
}

std::vector<Value> Database::DistinctValues(const std::string& table_name,
                                            const std::string& column_name,
                                            size_t limit) const {
  std::vector<Value> out;
  auto t_idx = schema_.FindTable(table_name);
  if (!t_idx.has_value()) return out;
  auto c_idx = schema_.tables[*t_idx].FindColumn(column_name);
  if (!c_idx.has_value()) return out;
  for (const auto& row : tables_[*t_idx].rows) {
    const Value& v = row[*c_idx];
    if (v.is_null()) continue;
    bool seen = false;
    for (const auto& existing : out) {
      if (existing == v) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      out.push_back(v);
      if (out.size() >= limit) break;
    }
  }
  return out;
}

}  // namespace codes::sql
