#ifndef CODES_SQLENGINE_AST_H_
#define CODES_SQLENGINE_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sqlengine/value.h"

namespace codes::sql {

struct SelectStatement;

/// Expression node kinds.
enum class ExprKind {
  kLiteral,         ///< constant Value
  kColumnRef,       ///< [table.]column
  kStar,            ///< '*' (only valid inside COUNT(*) or SELECT *)
  kUnary,           ///< NOT e, -e, e IS NULL, e IS NOT NULL
  kBinary,          ///< e op e
  kFunction,        ///< f(args) — aggregates and scalar functions
  kBetween,         ///< e BETWEEN lo AND hi
  kInList,          ///< e IN (v1, v2, ...) / NOT IN
  kInSubquery,      ///< e IN (SELECT ...) / NOT IN
  kScalarSubquery,  ///< (SELECT ...) used as a value
  kCast,            ///< CAST(e AS TYPE)
};

enum class UnaryOp { kNot, kNegate, kIsNull, kIsNotNull };

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kConcat,
  kLike,
  kNotLike,
};

/// Returns the SQL spelling of `op` ("=", "<=", "AND", ...).
const char* BinaryOpName(BinaryOp op);

/// A SQL expression tree node. A single struct (rather than a class
/// hierarchy) keeps the parser, serializer, and executor compact; unused
/// fields are ignored for a given `kind`.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table;   ///< optional qualifier (table name or alias)
  std::string column;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;

  // Children: unary (1), binary (2), between (3: value, lo, hi),
  // in-list (1 + list handled via `in_list`), function args, cast (1).
  std::vector<std::unique_ptr<Expr>> children;

  // kFunction
  std::string function;       ///< uppercase name, e.g. "COUNT"
  bool distinct_arg = false;  ///< COUNT(DISTINCT x)

  // kInList
  std::vector<Value> in_list;
  bool negated = false;  ///< NOT IN / NOT BETWEEN

  // kInSubquery / kScalarSubquery
  std::unique_ptr<SelectStatement> subquery;

  // kCast
  DataType cast_type = DataType::kText;

  // ----- Executor scratch state (filled during execution) -----
  /// Flat index of the column in the working row; -1 when unresolved.
  mutable int resolved_index = -1;
  /// When evaluating post-aggregation expressions, aggregate function nodes
  /// carry their computed value here.
  mutable Value agg_result;
  mutable bool use_agg_result = false;

  /// Serializes the expression back to SQL text.
  std::string ToSql() const;

  /// Deep copy (executor scratch state is not copied).
  std::unique_ptr<Expr> Clone() const;

  /// True if this node is an aggregate function call (COUNT/SUM/...).
  bool IsAggregate() const;

  /// True if any node in the subtree is an aggregate call.
  bool ContainsAggregate() const;

  // ----- Convenience factories -----
  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeColumn(std::string table, std::string column);
  static std::unique_ptr<Expr> MakeStar();
  static std::unique_ptr<Expr> MakeUnary(UnaryOp op, std::unique_ptr<Expr> e);
  static std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> MakeFunction(std::string name,
                                            std::vector<std::unique_ptr<Expr>> args,
                                            bool distinct = false);
};

/// One item of the SELECT list: expression plus optional alias.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;
};

/// A table reference with optional alias ("singer AS T1").
struct TableRef {
  std::string table;
  std::string alias;

  /// Alias if present, else the table name — the name columns bind to.
  const std::string& BindingName() const { return alias.empty() ? table : alias; }
};

/// An INNER JOIN clause with its ON condition.
struct JoinClause {
  TableRef table;
  std::unique_ptr<Expr> condition;  ///< may be null (cross join)
};

/// One ORDER BY key.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool ascending = true;
};

/// Set operation linking two SELECTs.
enum class SetOp { kNone, kUnion, kUnionAll, kIntersect, kExcept };

/// A SELECT statement (possibly with a chained set operation).
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  TableRef from;
  std::vector<JoinClause> joins;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  SetOp set_op = SetOp::kNone;
  std::unique_ptr<SelectStatement> set_rhs;

  /// Serializes back to SQL text.
  std::string ToSql() const;

  /// Deep copy.
  std::unique_ptr<SelectStatement> Clone() const;

  /// True if this query (or a set-op arm) orders its output; execution
  /// results are then compared order-sensitively.
  bool HasOrderBy() const { return !order_by.empty(); }
};

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_AST_H_
