#ifndef CODES_SQLENGINE_DATABASE_H_
#define CODES_SQLENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqlengine/catalog.h"
#include "sqlengine/exec_source.h"
#include "sqlengine/value.h"

namespace codes::sql {

/// Row-oriented storage for one table.
struct Table {
  std::vector<std::vector<Value>> rows;
};

/// A fully materialized in-memory database: schema + table contents.
/// This is the engine's unit of execution and the paper's `D` in
/// S = Parser(Q, D). As an ExecSource it is the reference backend the
/// disk-backed storage engine is differentially tested against.
class Database : public ExecSource {
 public:
  Database() = default;
  explicit Database(DatabaseSchema schema);

  const DatabaseSchema& schema() const override { return schema_; }
  DatabaseSchema& mutable_schema() { return schema_; }

  // ExecSource access paths: everything is already materialized, so the
  // direct row vector doubles as the scan and no indexes exist.
  size_t SourceRowCount(int table_index) const override {
    return tables_[table_index].rows.size();
  }
  std::unique_ptr<RowCursor> Scan(int table_index) const override;
  const std::vector<Row>* DirectRows(int table_index) const override {
    return &tables_[table_index].rows;
  }

  /// Appends a row to `table_name`; fails if the table is unknown or the
  /// arity does not match the schema.
  Status Insert(const std::string& table_name, std::vector<Value> row);

  /// Table contents by schema index.
  const Table& TableAt(int index) const { return tables_[index]; }
  Table& MutableTableAt(int index) { return tables_[index]; }

  /// Number of rows in `table_name`, or 0 when unknown.
  size_t RowCount(const std::string& table_name) const;

  /// Total rows across all tables.
  size_t TotalRows() const;

  /// Total number of non-null cell values across all tables (the "database
  /// value count" of Section 6.2).
  size_t TotalValues() const;

  /// Up to `limit` distinct non-null values of a column, in first-seen
  /// order. Implements the paper's representative-value probe
  /// "SELECT DISTINCT {COL} FROM {TAB} WHERE {COL} IS NOT NULL LIMIT k".
  std::vector<Value> DistinctValues(const std::string& table_name,
                                    const std::string& column_name,
                                    size_t limit) const;

  /// Visits every non-null TEXT cell as (table_idx, column_idx, row_idx,
  /// text). Used to build the value retriever's BM25 index.
  template <typename Fn>
  void ForEachTextValue(Fn&& fn) const {
    for (size_t t = 0; t < tables_.size(); ++t) {
      const auto& table = tables_[t];
      for (size_t r = 0; r < table.rows.size(); ++r) {
        const auto& row = table.rows[r];
        for (size_t c = 0; c < row.size(); ++c) {
          if (row[c].is_text()) {
            fn(static_cast<int>(t), static_cast<int>(c), static_cast<int>(r),
               row[c].AsText());
          }
        }
      }
    }
  }

 private:
  DatabaseSchema schema_;
  std::vector<Table> tables_;  // parallel to schema_.tables
};

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_DATABASE_H_
