#ifndef CODES_SQLENGINE_LEXER_H_
#define CODES_SQLENGINE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace codes::sql {

/// Token categories produced by the SQL lexer.
enum class TokenKind {
  kKeyword,     ///< SELECT, FROM, ... (uppercased in `text`)
  kIdentifier,  ///< table/column names (original case in `text`)
  kString,      ///< 'abc' with quotes stripped and '' unescaped
  kInteger,
  kReal,
  kSymbol,      ///< punctuation/operators: ( ) , . = != <= ...
  kEnd,
};

/// One lexical token. `text` holds the normalized spelling.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// True if `word` (already uppercased) is a reserved SQL keyword.
bool IsSqlKeyword(const std::string& word);

/// Tokenizes SQL text. Fails with ParseError on unterminated strings or
/// illegal characters. The result always ends with a kEnd token.
Result<std::vector<Token>> LexSql(std::string_view input);

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_LEXER_H_
