#include "sqlengine/result_table.h"

#include <algorithm>
#include <cmath>

namespace codes::sql {

std::string ResultTable::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < column_names.size(); ++i) {
    if (i > 0) out += " | ";
    out += column_names[i];
  }
  out += "\n";
  size_t shown = std::min(max_rows, rows.size());
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) out += " | ";
      out += rows[r][c].ToString();
    }
    out += "\n";
  }
  if (shown < rows.size()) {
    out += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  return out;
}

namespace {

bool ValuesClose(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return true;
  if (a.is_null() || b.is_null()) return false;
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.ToNumeric();
    double y = b.ToNumeric();
    double scale = std::max({std::abs(x), std::abs(y), 1.0});
    return std::abs(x - y) <= 1e-6 * scale;
  }
  if (a.is_text() && b.is_text()) return a.AsText() == b.AsText();
  return false;
}

bool RowsClose(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ValuesClose(a[i], b[i])) return false;
  }
  return true;
}

// Canonical ordering for multiset comparison.
bool RowLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int cmp = a[i].Compare(b[i]);
    if (cmp != 0) return cmp < 0;
  }
  return a.size() < b.size();
}

}  // namespace

bool ResultsEquivalent(const ResultTable& a, const ResultTable& b,
                       bool ordered) {
  if (a.NumColumns() != b.NumColumns()) return false;
  if (a.NumRows() != b.NumRows()) return false;
  if (ordered) {
    for (size_t r = 0; r < a.rows.size(); ++r) {
      if (!RowsClose(a.rows[r], b.rows[r])) return false;
    }
    return true;
  }
  auto sa = a.rows;
  auto sb = b.rows;
  std::sort(sa.begin(), sa.end(), RowLess);
  std::sort(sb.begin(), sb.end(), RowLess);
  for (size_t r = 0; r < sa.size(); ++r) {
    if (!RowsClose(sa[r], sb[r])) return false;
  }
  return true;
}

}  // namespace codes::sql
