#ifndef CODES_SQLENGINE_EXEC_SOURCE_H_
#define CODES_SQLENGINE_EXEC_SOURCE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "sqlengine/catalog.h"
#include "sqlengine/value.h"

namespace codes::sql {

/// A materialized working row (one value per flat column).
using Row = std::vector<Value>;

/// Volcano-style forward cursor over the rows of one table. Cursors are
/// single-pass, not thread-safe, and must not outlive the ExecSource that
/// produced them.
class RowCursor {
 public:
  virtual ~RowCursor() = default;

  /// Produces the next row into `*out` (overwriting it) and returns true,
  /// or returns false at end of stream. Once false, stays false.
  virtual bool Next(Row* out) = 0;

  /// Terminal error channel: when Next() has returned false, a non-OK
  /// status means the stream ended on an error (e.g. a failed page read)
  /// rather than clean end-of-data. Callers must check it after draining.
  virtual Status status() const { return Status::Ok(); }
};

/// Distribution summary of one indexed column, consumed by the executor's
/// access-path cost rule.
struct ColumnIndexStats {
  /// How the column's non-NULL values relate to Value::Compare ordering.
  /// Index scans are only order-equivalent to predicate evaluation when
  /// every value is on one side of the numeric/text divide; kMixed columns
  /// are never index-scanned.
  enum class ValueClass { kEmpty, kNumeric, kText, kMixed };

  ValueClass value_class = ValueClass::kEmpty;
  size_t entries = 0;    ///< non-NULL values in the index
  Value min_value;       ///< smallest key (unset when kEmpty)
  Value max_value;       ///< largest key (unset when kEmpty)
  bool unique = false;   ///< true for primary-key indexes
};

/// Inclusive/exclusive one-sided bound of an index range scan. A null
/// `value` pointer means unbounded on that side.
struct IndexBound {
  const Value* value = nullptr;
  bool inclusive = true;
};

/// The executor's view of a database backend: schema plus per-table row
/// access paths. Two implementations exist — the fully materialized
/// in-memory Database and the disk-backed storage::StorageDb — and the
/// differential test harness pins that a statement executes byte-
/// identically over either.
///
/// Order contract: Scan() yields rows in insertion order, and IndexScan()
/// yields exactly the rows whose key falls in [lo, hi] under
/// Value::Compare, in the SAME insertion order (not key order). That makes
/// an index scan a pure prefilter: downstream plan stages see the same row
/// sequence they would have seen from a full scan minus non-matching rows,
/// which is what keeps the two backends bit-for-bit equivalent.
class ExecSource {
 public:
  virtual ~ExecSource() = default;

  virtual const DatabaseSchema& schema() const = 0;

  /// Rows currently stored in table `table_index`.
  virtual size_t SourceRowCount(int table_index) const = 0;

  /// Sequential scan in insertion order.
  virtual std::unique_ptr<RowCursor> Scan(int table_index) const = 0;

  /// Zero-copy escape hatch: when the backend already holds the table as a
  /// contiguous row vector (the in-memory Database), returns it so the
  /// executor can keep its historical pointer-based join paths; nullptr
  /// otherwise. Purely an optimization — semantics must match Scan().
  virtual const std::vector<Row>* DirectRows(int table_index) const {
    (void)table_index;
    return nullptr;
  }

  /// Fills `*out` and returns true when (table, column) has a usable
  /// range index. The default backend has none.
  virtual bool IndexStats(int table_index, int column_index,
                          ColumnIndexStats* out) const {
    (void)table_index;
    (void)column_index;
    (void)out;
    return false;
  }

  /// Index range scan over (table, column); see the order contract above.
  /// Returns nullptr when no index exists (callers fall back to Scan).
  /// NULL column values are never produced (SQL comparisons with NULL are
  /// never true, so they cannot satisfy a sargable predicate).
  virtual std::unique_ptr<RowCursor> IndexScan(int table_index,
                                               int column_index,
                                               const IndexBound& lo,
                                               const IndexBound& hi) const {
    (void)table_index;
    (void)column_index;
    (void)lo;
    (void)hi;
    return nullptr;
  }
};

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_EXEC_SOURCE_H_
