#include "sqlengine/catalog.h"

#include "common/string_util.h"

namespace codes::sql {

std::optional<int> TableDef::FindColumn(const std::string& column_name) const {
  std::string needle = ToLower(column_name);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (ToLower(columns[i].name) == needle) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::optional<int> DatabaseSchema::FindTable(
    const std::string& table_name) const {
  std::string needle = ToLower(table_name);
  for (size_t i = 0; i < tables.size(); ++i) {
    if (ToLower(tables[i].name) == needle) return static_cast<int>(i);
  }
  return std::nullopt;
}

int DatabaseSchema::TotalColumns() const {
  int n = 0;
  for (const auto& t : tables) n += static_cast<int>(t.columns.size());
  return n;
}

std::vector<ForeignKey> DatabaseSchema::ForeignKeysOf(
    const std::string& table_name) const {
  std::vector<ForeignKey> out;
  std::string needle = ToLower(table_name);
  for (const auto& fk : foreign_keys) {
    if (ToLower(fk.table) == needle || ToLower(fk.ref_table) == needle) {
      out.push_back(fk);
    }
  }
  return out;
}

std::string DatabaseSchema::ToDdl() const {
  std::string out;
  for (const auto& table : tables) {
    out += "CREATE TABLE " + table.name + " (\n";
    for (size_t i = 0; i < table.columns.size(); ++i) {
      const auto& col = table.columns[i];
      out += "  " + col.name + " " + DataTypeName(col.type);
      if (col.is_primary_key) out += " PRIMARY KEY";
      bool last = (i + 1 == table.columns.size());
      // FK clauses follow all columns.
      if (!last) out += ",";
      if (!col.comment.empty()) out += " -- " + col.comment;
      out += "\n";
    }
    for (const auto& fk : foreign_keys) {
      if (ToLower(fk.table) == ToLower(table.name)) {
        out += "  , FOREIGN KEY (" + fk.column + ") REFERENCES " +
               fk.ref_table + "(" + fk.ref_column + ")\n";
      }
    }
    out += ");\n";
  }
  return out;
}

}  // namespace codes::sql
