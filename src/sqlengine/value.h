#ifndef CODES_SQLENGINE_VALUE_H_
#define CODES_SQLENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace codes::sql {

/// Column data types supported by the engine. Mirrors the SQLite-style
/// storage classes the paper's databases use.
enum class DataType {
  kInteger,
  kReal,
  kText,
};

/// Returns the SQL spelling of a type ("INTEGER", "REAL", "TEXT").
const char* DataTypeName(DataType type);

/// A dynamically typed SQL value: NULL, INTEGER, REAL, or TEXT.
///
/// Comparison follows SQLite-like affinity rules: numeric values compare
/// numerically across INTEGER/REAL; NULL never equals anything (but sorts
/// first and hashes consistently so result multisets can be compared).
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_integer() const { return std::holds_alternative<int64_t>(data_); }
  bool is_real() const { return std::holds_alternative<double>(data_); }
  bool is_text() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return is_integer() || is_real(); }

  int64_t AsInteger() const;
  double AsReal() const;
  const std::string& AsText() const;

  /// Numeric view of the value: integers widen to double; text parses when
  /// it looks like a number, else 0 (SQLite CAST semantics).
  double ToNumeric() const;

  /// Text rendering: "NULL", integer/real decimal form, or the raw string.
  std::string ToString() const;

  /// SQL-literal rendering: strings are single-quoted with '' escaping.
  std::string ToSqlLiteral() const;

  /// Total ordering used for ORDER BY and result canonicalization:
  /// NULL < numerics (by value) < text (lexicographic).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// SQL equality (numeric coercion across int/real; NULL != NULL here,
  /// use Compare for canonical ordering which treats NULLs as equal).
  bool SqlEquals(const Value& other) const;

  /// Structural equality including NULL == NULL; used by tests and result
  /// multiset comparison.
  bool operator==(const Value& other) const { return Compare(other) == 0; }

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_VALUE_H_
