#ifndef CODES_SQLENGINE_PARSER_H_
#define CODES_SQLENGINE_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "sqlengine/ast.h"

namespace codes::sql {

/// Parses a single SELECT statement (optionally chained with set
/// operations) from SQL text. A trailing semicolon is permitted.
///
/// The supported grammar covers the Spider-style query space: SELECT
/// [DISTINCT] expr-list FROM table [AS alias] (JOIN table [AS alias]
/// ON cond)* [WHERE cond] [GROUP BY exprs] [HAVING cond]
/// [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
/// [UNION|UNION ALL|INTERSECT|EXCEPT select].
Result<std::unique_ptr<SelectStatement>> ParseSql(std::string_view sql);

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_PARSER_H_
