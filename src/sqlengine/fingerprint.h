#ifndef CODES_SQLENGINE_FINGERPRINT_H_
#define CODES_SQLENGINE_FINGERPRINT_H_

#include <string>

#include "sqlengine/ast.h"

namespace codes::sql {

/// A structural summary of a SELECT statement, abstracting away concrete
/// schema names and literal values. Two queries produced by the same
/// grammar template share a fingerprint; the generator and the SFT trainer
/// use this to map gold SQL back to templates, and the Dr.Spider-style
/// SQL-perturbation test sets use it to bucket queries by shape.
///
/// Predicates are encoded as "<op>:<rhs-type>" where rhs-type is one of
/// t (text literal), n (numeric literal), c (column), q (subquery),
/// x (other); a leading "f" marks predicates whose operand contains a
/// scalar function or CAST. LIKE predicates encode their pattern shape
/// ("like:pre" for 'abc%', "like:sub" for '%abc%').
struct SqlFingerprint {
  int join_count = 0;
  int select_items = 0;
  bool select_distinct = false;
  bool select_star = false;      ///< bare '*' in the select list
  bool select_scalar_fn = false; ///< non-aggregate function in select list
  std::string aggregates;        ///< sorted agg names anywhere in select
  bool has_star_count = false;   ///< COUNT(*) present
  std::string where_ops;         ///< sorted predicate codes, "+"-joined
  std::string where_connector;   ///< "", "and", "or"
  bool has_in_subquery = false;
  bool has_scalar_subquery = false;
  bool has_group_by = false;
  bool has_having = false;
  std::string having_aggregate;  ///< agg name inside HAVING, if any
  std::string order;             ///< "", "asc", "desc"
  bool order_by_aggregate = false;
  int limit_kind = 0;            ///< 0: none, 1: LIMIT 1, 2: LIMIT k>1
  std::string set_op;            ///< "", "union", "intersect", "except"

  /// Canonical string form used as a hash key.
  std::string ToKey() const;
};

/// Computes the fingerprint of `stmt`.
SqlFingerprint FingerprintOf(const SelectStatement& stmt);

}  // namespace codes::sql

#endif  // CODES_SQLENGINE_FINGERPRINT_H_
