#include "sqlengine/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/string_util.h"

namespace codes::sql {

bool IsSqlKeyword(const std::string& word) {
  static const std::unordered_set<std::string>* const kKeywords =
      new std::unordered_set<std::string>{
          "SELECT", "FROM",  "WHERE",    "GROUP",  "BY",      "HAVING",
          "ORDER",  "LIMIT", "JOIN",     "INNER",  "LEFT",    "ON",
          "AS",     "AND",   "OR",       "NOT",    "IN",      "BETWEEN",
          "LIKE",   "IS",    "NULL",     "DISTINCT", "COUNT", "SUM",
          "AVG",    "MIN",   "MAX",      "ASC",    "DESC",    "UNION",
          "ALL",    "INTERSECT", "EXCEPT", "CAST", "INTEGER", "REAL",
          "TEXT",   "CASE",  "WHEN",     "THEN",  "ELSE",     "END"};
  return kKeywords->count(word) > 0;
}

Result<std::vector<Token>> LexSql(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    // String literal.
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += input[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(token.offset));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    // Quoted identifier: "name" or `name`.
    if (c == '"' || c == '`') {
      char quote = c;
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        text += input[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError("unterminated quoted identifier at offset " +
                                  std::to_string(token.offset));
      }
      token.kind = TokenKind::kIdentifier;
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool has_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       (input[i] == '.' && !has_dot))) {
        if (input[i] == '.') has_dot = true;
        ++i;
      }
      // Exponent suffix ("1.5e-05", "2E8"); only consumed when a digit
      // actually follows, so "1e" stays number-then-identifier.
      bool has_exp = false;
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          has_exp = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
      }
      std::string text(input.substr(start, i - start));
      if (has_dot || has_exp) {
        token.kind = TokenKind::kReal;
        token.real_value = std::strtod(text.c_str(), nullptr);
      } else {
        token.kind = TokenKind::kInteger;
        token.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    // Identifier or keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word(input.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (IsSqlKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = std::move(upper);
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = std::move(word);
      }
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-character symbols.
    if (i + 1 < n) {
      std::string_view two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>" ||
          two == "||") {
        token.kind = TokenKind::kSymbol;
        token.text = (two == "<>") ? "!=" : std::string(two);
        tokens.push_back(std::move(token));
        i += 2;
        continue;
      }
    }
    // Single-character symbols.
    static const std::string kSymbols = "(),.*=<>+-/;";
    if (kSymbols.find(c) != std::string::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace codes::sql
