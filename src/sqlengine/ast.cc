#include "sqlengine/ast.h"

#include "common/status.h"
#include "common/string_util.h"

namespace codes::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kConcat: return "||";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kNotLike: return "NOT LIKE";
  }
  return "?";
}

namespace {

/// Binding strength of a node when printed, mirroring the parser's
/// precedence ladder (OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE <
/// additive/concat < multiplicative < unary minus < primary). Serialization
/// must parenthesize any child that binds looser than its context, or the
/// text re-parses to a different tree — e.g. (1 + 2) * 3 printed without
/// parens comes back as 1 + 2 * 3.
int PrecedenceOf(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kBinary:
      switch (e.binary_op) {
        case BinaryOp::kOr:
          return 1;
        case BinaryOp::kAnd:
          return 2;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kLike:
        case BinaryOp::kNotLike:
          return 4;
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kConcat:
          return 5;
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return 6;
      }
      return 4;
    case ExprKind::kUnary:
      switch (e.unary_op) {
        case UnaryOp::kNot:
          return 3;
        case UnaryOp::kNegate:
          return 7;
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          return 4;
      }
      return 3;
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kInSubquery:
      return 4;
    default:
      return 8;  // literals, column refs, functions, CAST, (subquery), '*'
  }
}

/// Prints `child`, parenthesized when it binds looser than the context
/// requires.
std::string ChildSql(const Expr& child, int min_prec) {
  std::string s = child.ToSql();
  if (PrecedenceOf(child) < min_prec) return "(" + s + ")";
  return s;
}

}  // namespace

std::string Expr::ToSql() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      if (table.empty()) return column;
      return table + "." + column;
    case ExprKind::kStar:
      // A qualified star ("T1.*") must keep its qualifier: in a join it
      // expands to one table's columns, a bare '*' to all of them.
      if (table.empty()) return "*";
      return table + ".*";
    case ExprKind::kUnary: {
      switch (unary_op) {
        case UnaryOp::kNot:
          // NOT applies down to comparison level; parenthesize AND/OR/NOT.
          return "NOT " + ChildSql(*children[0], 3);
        case UnaryOp::kNegate:
          // The parser only allows a primary after unary '-'; anything
          // else (including a nested negate, which would lex as "--")
          // needs parens.
          return "-" + ChildSql(*children[0], 8);
        case UnaryOp::kIsNull:
          return ChildSql(*children[0], 5) + " IS NULL";
        case UnaryOp::kIsNotNull:
          return ChildSql(*children[0], 5) + " IS NOT NULL";
      }
      return children[0]->ToSql();
    }
    case ExprKind::kBinary: {
      const int prec = PrecedenceOf(*this);
      // Left-associative: an equal-precedence child re-parses identically
      // on the left but needs parens on the right (a - (b - c)).
      // Comparisons are non-associative, so both sides require the next
      // tighter level.
      const int left_min = (prec == 4) ? 5 : prec;
      const int right_min = prec + 1;
      return ChildSql(*children[0], left_min) + " " +
             BinaryOpName(binary_op) + " " + ChildSql(*children[1], right_min);
    }
    case ExprKind::kFunction: {
      std::string out = function + "(";
      if (distinct_arg) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToSql();
      }
      out += ")";
      return out;
    }
    case ExprKind::kBetween: {
      // Operand and bounds are parsed at additive level; an embedded AND
      // in the upper bound would otherwise merge with BETWEEN's AND.
      std::string out = ChildSql(*children[0], 5);
      if (negated) out += " NOT";
      out += " BETWEEN " + ChildSql(*children[1], 5) + " AND " +
             ChildSql(*children[2], 5);
      return out;
    }
    case ExprKind::kInList: {
      std::string out = ChildSql(*children[0], 5);
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list[i].ToSqlLiteral();
      }
      out += ")";
      return out;
    }
    case ExprKind::kInSubquery: {
      std::string out = ChildSql(*children[0], 5);
      out += negated ? " NOT IN (" : " IN (";
      out += subquery->ToSql();
      out += ")";
      return out;
    }
    case ExprKind::kScalarSubquery:
      return "(" + subquery->ToSql() + ")";
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToSql() + " AS " +
             DataTypeName(cast_type) + ")";
  }
  return "";
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->literal = literal;
  copy->table = table;
  copy->column = column;
  copy->unary_op = unary_op;
  copy->binary_op = binary_op;
  copy->function = function;
  copy->distinct_arg = distinct_arg;
  copy->in_list = in_list;
  copy->negated = negated;
  copy->cast_type = cast_type;
  for (const auto& c : children) copy->children.push_back(c->Clone());
  if (subquery) copy->subquery = subquery->Clone();
  return copy;
}

bool Expr::IsAggregate() const {
  if (kind != ExprKind::kFunction) return false;
  return function == "COUNT" || function == "SUM" || function == "AVG" ||
         function == "MIN" || function == "MAX";
}

bool Expr::ContainsAggregate() const {
  if (IsAggregate()) return true;
  for (const auto& c : children) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

std::unique_ptr<Expr> Expr::MakeUnary(UnaryOp op, std::unique_ptr<Expr> inner) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(inner));
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

std::unique_ptr<Expr> Expr::MakeFunction(
    std::string name, std::vector<std::unique_ptr<Expr>> args, bool distinct) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunction;
  e->function = ToUpper(name);
  e->children = std::move(args);
  e->distinct_arg = distinct;
  return e;
}

std::string SelectStatement::ToSql() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_list[i].expr->ToSql();
    if (!select_list[i].alias.empty()) out += " AS " + select_list[i].alias;
  }
  out += " FROM " + from.table;
  if (!from.alias.empty()) out += " AS " + from.alias;
  for (const auto& join : joins) {
    out += " JOIN " + join.table.table;
    if (!join.table.alias.empty()) out += " AS " + join.table.alias;
    if (join.condition) out += " ON " + join.condition->ToSql();
  }
  if (where) out += " WHERE " + where->ToSql();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToSql();
    }
  }
  if (having) out += " HAVING " + having->ToSql();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToSql();
      out += order_by[i].ascending ? " ASC" : " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  switch (set_op) {
    case SetOp::kNone:
      break;
    case SetOp::kUnion:
      out += " UNION " + set_rhs->ToSql();
      break;
    case SetOp::kUnionAll:
      out += " UNION ALL " + set_rhs->ToSql();
      break;
    case SetOp::kIntersect:
      out += " INTERSECT " + set_rhs->ToSql();
      break;
    case SetOp::kExcept:
      out += " EXCEPT " + set_rhs->ToSql();
      break;
  }
  return out;
}

std::unique_ptr<SelectStatement> SelectStatement::Clone() const {
  auto copy = std::make_unique<SelectStatement>();
  copy->distinct = distinct;
  for (const auto& item : select_list) {
    SelectItem si;
    si.expr = item.expr->Clone();
    si.alias = item.alias;
    copy->select_list.push_back(std::move(si));
  }
  copy->from = from;
  for (const auto& join : joins) {
    JoinClause jc;
    jc.table = join.table;
    if (join.condition) jc.condition = join.condition->Clone();
    copy->joins.push_back(std::move(jc));
  }
  if (where) copy->where = where->Clone();
  for (const auto& g : group_by) copy->group_by.push_back(g->Clone());
  if (having) copy->having = having->Clone();
  for (const auto& o : order_by) {
    OrderItem oi;
    oi.expr = o.expr->Clone();
    oi.ascending = o.ascending;
    copy->order_by.push_back(std::move(oi));
  }
  copy->limit = limit;
  copy->set_op = set_op;
  if (set_rhs) copy->set_rhs = set_rhs->Clone();
  return copy;
}

}  // namespace codes::sql
