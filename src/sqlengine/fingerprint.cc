#include "sqlengine/fingerprint.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"

namespace codes::sql {

namespace {

bool ContainsScalarFn(const Expr& e) {
  if (e.kind == ExprKind::kCast) return true;
  if (e.kind == ExprKind::kFunction && !e.IsAggregate()) return true;
  for (const auto& c : e.children) {
    if (ContainsScalarFn(*c)) return true;
  }
  return false;
}

void CollectAggregates(const Expr& e, std::vector<std::string>& aggs,
                       bool& has_star_count) {
  if (e.IsAggregate()) {
    std::string name = ToLower(e.function);
    if (e.distinct_arg) name += "_distinct";
    aggs.push_back(name);
    if (e.function == "COUNT" && !e.children.empty() &&
        e.children[0]->kind == ExprKind::kStar) {
      has_star_count = true;
    }
    return;
  }
  for (const auto& c : e.children) CollectAggregates(*c, aggs, has_star_count);
}

char RhsTypeChar(const Expr& rhs) {
  switch (rhs.kind) {
    case ExprKind::kLiteral:
      return rhs.literal.is_text() ? 't' : 'n';
    case ExprKind::kColumnRef:
      return 'c';
    case ExprKind::kScalarSubquery:
      return 'q';
    default:
      return 'x';
  }
}

void CollectWhereOps(const Expr& e, std::vector<std::string>& ops,
                     std::string& connector, SqlFingerprint& fp) {
  switch (e.kind) {
    case ExprKind::kBinary: {
      if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
        std::string c = (e.binary_op == BinaryOp::kAnd) ? "and" : "or";
        if (connector.empty() || connector == c) {
          connector = c;
        } else {
          connector = "mixed";
        }
        CollectWhereOps(*e.children[0], ops, connector, fp);
        CollectWhereOps(*e.children[1], ops, connector, fp);
        return;
      }
      std::string op;
      switch (e.binary_op) {
        case BinaryOp::kEq: op = "eq"; break;
        case BinaryOp::kNe: op = "ne"; break;
        case BinaryOp::kGt: op = "gt"; break;
        case BinaryOp::kLt: op = "lt"; break;
        case BinaryOp::kGe: op = "ge"; break;
        case BinaryOp::kLe: op = "le"; break;
        case BinaryOp::kLike:
        case BinaryOp::kNotLike: {
          std::string shape = "pre";
          const Expr& rhs = *e.children[1];
          if (rhs.kind == ExprKind::kLiteral && rhs.literal.is_text() &&
              !rhs.literal.AsText().empty() &&
              rhs.literal.AsText().front() == '%') {
            shape = "sub";
          }
          ops.push_back((e.binary_op == BinaryOp::kNotLike ? "nlike:" : "like:") +
                        shape);
          return;
        }
        default: op = "expr"; break;
      }
      const Expr& rhs = *e.children[1];
      if (rhs.kind == ExprKind::kScalarSubquery) fp.has_scalar_subquery = true;
      std::string code = op;
      code += ':';
      code += RhsTypeChar(rhs);
      if (ContainsScalarFn(*e.children[0]) || ContainsScalarFn(rhs)) {
        code = "f" + code;
      }
      ops.push_back(std::move(code));
      return;
    }
    case ExprKind::kBetween:
      ops.push_back(e.negated ? "nbetween" : "between");
      return;
    case ExprKind::kInList:
      ops.push_back(e.negated ? "notin" : "in");
      return;
    case ExprKind::kInSubquery:
      fp.has_in_subquery = true;
      ops.push_back(e.negated ? "notinq" : "inq");
      return;
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kIsNull) {
        ops.push_back("isnull");
        return;
      }
      if (e.unary_op == UnaryOp::kIsNotNull) {
        ops.push_back("notnull");
        return;
      }
      if (!e.children.empty()) {
        CollectWhereOps(*e.children[0], ops, connector, fp);
      }
      return;
    default:
      ops.push_back("expr");
      return;
  }
}

}  // namespace

SqlFingerprint FingerprintOf(const SelectStatement& stmt) {
  SqlFingerprint fp;
  fp.join_count = static_cast<int>(stmt.joins.size());
  fp.select_items = static_cast<int>(stmt.select_list.size());
  fp.select_distinct = stmt.distinct;

  std::vector<std::string> aggs;
  for (const auto& item : stmt.select_list) {
    const Expr& e = *item.expr;
    if (e.kind == ExprKind::kStar) fp.select_star = true;
    if (!e.IsAggregate() && ContainsScalarFn(e)) fp.select_scalar_fn = true;
    CollectAggregates(e, aggs, fp.has_star_count);
  }
  std::sort(aggs.begin(), aggs.end());
  fp.aggregates = Join(aggs, "+");

  if (stmt.where) {
    std::vector<std::string> ops;
    CollectWhereOps(*stmt.where, ops, fp.where_connector, fp);
    std::sort(ops.begin(), ops.end());
    fp.where_ops = Join(ops, "+");
  }

  fp.has_group_by = !stmt.group_by.empty();
  fp.has_having = (stmt.having != nullptr);
  if (stmt.having) {
    std::vector<std::string> having_aggs;
    bool unused = false;
    CollectAggregates(*stmt.having, having_aggs, unused);
    std::sort(having_aggs.begin(), having_aggs.end());
    fp.having_aggregate = Join(having_aggs, "+");
  }
  if (!stmt.order_by.empty()) {
    fp.order = stmt.order_by[0].ascending ? "asc" : "desc";
    fp.order_by_aggregate = stmt.order_by[0].expr->ContainsAggregate();
  }
  if (stmt.limit.has_value()) {
    fp.limit_kind = (*stmt.limit == 1) ? 1 : 2;
  }
  switch (stmt.set_op) {
    case SetOp::kUnion:
    case SetOp::kUnionAll:
      fp.set_op = "union";
      break;
    case SetOp::kIntersect:
      fp.set_op = "intersect";
      break;
    case SetOp::kExcept:
      fp.set_op = "except";
      break;
    case SetOp::kNone:
      break;
  }
  return fp;
}

std::string SqlFingerprint::ToKey() const {
  std::string key;
  key += "j" + std::to_string(join_count);
  key += "|s" + std::to_string(select_items);
  key += select_distinct ? "|dist" : "";
  key += select_star ? "|star" : "";
  key += select_scalar_fn ? "|sfn" : "";
  key += "|a:" + aggregates;
  key += has_star_count ? "|cstar" : "";
  key += "|w:" + where_ops;
  key += "|wc:" + where_connector;
  key += has_in_subquery ? "|inq" : "";
  key += has_scalar_subquery ? "|ssq" : "";
  key += has_group_by ? "|grp" : "";
  key += has_having ? ("|hav:" + having_aggregate) : "";
  key += "|o:" + order + (order_by_aggregate ? "@agg" : "");
  key += "|l" + std::to_string(limit_kind);
  key += "|set:" + set_op;
  return key;
}

}  // namespace codes::sql
