#include "sqlengine/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "sqlengine/exec_source.h"
#include "sqlengine/parser.h"

namespace codes::sql {

namespace {

/// Hard cap on intermediate row counts; exceeding it aborts execution with
/// an error instead of consuming unbounded memory. ExecGuard budgets are
/// per-request and usually far tighter; this is the engine's own backstop.
constexpr size_t kMaxIntermediateRows = 4'000'000;

/// The executor.step failpoint is evaluated once per statement and then
/// once per this many materialized rows, so an injected fault can land
/// mid-scan without the disabled-registry check costing anything per row.
constexpr size_t kStepFailpointStride = 1024;

/// One row in this many has its text payload measured exactly for byte
/// budgeting; the sample is scaled to cover the stride.
constexpr size_t kByteSampleStride = 8;

/// One entry of the FROM-clause scope: a bound table occurrence.
struct ScopeEntry {
  std::string binding;  // lowercase alias-or-table-name
  int table_index;      // index in db schema
  int offset;           // flat offset of this table's first column
};

/// Name-resolution scope for a single SELECT. Works off the schema alone,
/// so it is backend-independent.
class Scope {
 public:
  Status AddTable(const DatabaseSchema& schema, const TableRef& ref) {
    auto idx = schema.FindTable(ref.table);
    if (!idx.has_value()) {
      return Status::BindError("no such table: " + ref.table);
    }
    ScopeEntry entry;
    entry.binding = ToLower(ref.BindingName());
    for (const auto& existing : entries_) {
      if (existing.binding == entry.binding) {
        return Status::BindError("duplicate table binding: " + entry.binding);
      }
    }
    entry.table_index = *idx;
    entry.offset = width_;
    width_ += static_cast<int>(schema.tables[*idx].columns.size());
    entries_.push_back(std::move(entry));
    return Status::Ok();
  }

  int width() const { return width_; }
  const std::vector<ScopeEntry>& entries() const { return entries_; }

  /// Resolves [qualifier.]column to a flat index. Unqualified names must be
  /// unambiguous across bound tables.
  Result<int> ResolveColumn(const DatabaseSchema& schema,
                            const std::string& qualifier,
                            const std::string& column) const {
    std::string q = ToLower(qualifier);
    std::string c = ToLower(column);
    int found = -1;
    for (const auto& entry : entries_) {
      if (!q.empty() && entry.binding != q) continue;
      const TableDef& def = schema.tables[entry.table_index];
      auto col = def.FindColumn(c);
      if (col.has_value()) {
        if (found >= 0) {
          return Status::BindError("ambiguous column: " + column);
        }
        found = entry.offset + *col;
      }
    }
    if (found < 0) {
      std::string name = qualifier.empty() ? column : qualifier + "." + column;
      return Status::BindError("no such column: " + name);
    }
    return found;
  }

  /// Column headers for the full working row (used to expand '*').
  std::vector<std::string> AllColumnNames(const DatabaseSchema& schema) const {
    std::vector<std::string> names;
    for (const auto& entry : entries_) {
      const TableDef& def = schema.tables[entry.table_index];
      for (const auto& col : def.columns) names.push_back(col.name);
    }
    return names;
  }

 private:
  std::vector<ScopeEntry> entries_;
  int width_ = 0;
};

/// Hash of a row of values, for hash joins and DISTINCT.
struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 1469598103934665603ULL;
    for (const auto& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

class SelectRunner {
 public:
  SelectRunner(const ExecSource& source, const SelectStatement& stmt,
               ExecGuard* guard)
      : source_(source), stmt_(stmt), guard_(guard) {}

  Result<ResultTable> Run() {
    if (Failpoints::ShouldFail(FailpointSite::kExecutorStep)) {
      return Failpoints::FailStatus(FailpointSite::kExecutorStep);
    }
    if (guard_ != nullptr) CODES_RETURN_IF_ERROR(guard_->Check());
    CODES_RETURN_IF_ERROR(BuildScope());
    CODES_RETURN_IF_ERROR(ExpandStars());
    CODES_RETURN_IF_ERROR(RewriteAliasRefs());
    CODES_RETURN_IF_ERROR(ResolveAll());
    CODES_ASSIGN_OR_RETURN(std::vector<Row> rows, ProduceJoinedRows());
    return Project(std::move(rows));
  }

 private:
  // -------------------------------------------------------- guard charging
  /// Approximate heap footprint of one materialized row: per-cell Value
  /// storage plus text payloads (an estimate, not allocator-exact).
  static size_t ApproxRowBytes(const Row& row) {
    size_t bytes = row.size() * sizeof(Value);
    for (const auto& v : row) {
      if (v.is_text()) bytes += v.AsText().size();
    }
    return bytes;
  }

  /// Charges one materialized row against the guard and periodically
  /// evaluates the executor.step failpoint. Text payloads are sampled —
  /// every kByteSampleStride-th row is inspected exactly and scaled — so
  /// byte budgeting stays an O(1)-per-row estimate instead of a per-cell
  /// variant walk.
  Status ChargeRow(const Row& row) {
    if (++step_rows_ % kStepFailpointStride == 0 &&
        Failpoints::ShouldFail(FailpointSite::kExecutorStep)) {
      return Failpoints::FailStatus(FailpointSite::kExecutorStep);
    }
    if (guard_ == nullptr) return Status::Ok();
    size_t bytes = 0;
    if (guard_->tracks_bytes() && step_rows_ % kByteSampleStride == 0) {
      bytes = ApproxRowBytes(row) * kByteSampleStride;
    }
    return guard_->ChargeRow(bytes);
  }

  // ---------------------------------------------------------------- setup
  Status BuildScope() {
    CODES_RETURN_IF_ERROR(scope_.AddTable(source_.schema(), stmt_.from));
    for (const auto& join : stmt_.joins) {
      CODES_RETURN_IF_ERROR(scope_.AddTable(source_.schema(), join.table));
    }
    return Status::Ok();
  }

  /// Replaces a bare `SELECT *` / `SELECT t.*` with explicit column refs so
  /// downstream stages see a uniform select list.
  Status ExpandStars() {
    bool has_star = false;
    for (const auto& item : stmt_.select_list) {
      if (item.expr->kind == ExprKind::kStar) has_star = true;
    }
    if (!has_star) return Status::Ok();
    for (const auto& item : stmt_.select_list) {
      if (item.expr->kind == ExprKind::kStar &&
          stmt_.select_list.size() > 1) {
        return Status::BindError("'*' must be the only select item");
      }
    }
    const Expr& star = *stmt_.select_list[0].expr;
    std::string qualifier = ToLower(star.table);
    expanded_select_.clear();
    for (const auto& entry : scope_.entries()) {
      if (!qualifier.empty() && entry.binding != qualifier) continue;
      const TableDef& def = source_.schema().tables[entry.table_index];
      for (const auto& col : def.columns) {
        SelectItem item;
        item.expr = Expr::MakeColumn(entry.binding, col.name);
        item.alias = col.name;
        expanded_select_.push_back(std::move(item));
      }
    }
    if (expanded_select_.empty()) {
      return Status::BindError("'*' expansion produced no columns");
    }
    use_expanded_ = true;
    return Status::Ok();
  }

  std::vector<SelectItem>& select_list() {
    return use_expanded_ ? expanded_select_
                         : const_cast<std::vector<SelectItem>&>(
                               stmt_.select_list);
  }

  /// ORDER BY / GROUP BY / HAVING may reference select aliases or 1-based
  /// positions; rewrite those references to clones of the select exprs.
  Status RewriteAliasRefs() {
    auto rewrite = [this](std::unique_ptr<Expr>& e) -> Status {
      if (!e) return Status::Ok();
      // Positional reference.
      if (e->kind == ExprKind::kLiteral && e->literal.is_integer()) {
        int64_t pos = e->literal.AsInteger();
        if (pos >= 1 &&
            pos <= static_cast<int64_t>(select_list().size())) {
          e = select_list()[pos - 1].expr->Clone();
        }
        return Status::Ok();
      }
      // Alias reference: unqualified name matching an alias and not a
      // resolvable column.
      if (e->kind == ExprKind::kColumnRef && e->table.empty()) {
        auto direct = scope_.ResolveColumn(source_.schema(), "", e->column);
        if (!direct.ok()) {
          for (const auto& item : select_list()) {
            if (!item.alias.empty() &&
                ToLower(item.alias) == ToLower(e->column)) {
              e = item.expr->Clone();
              return Status::Ok();
            }
          }
        }
      }
      return Status::Ok();
    };
    for (auto& o : const_cast<std::vector<OrderItem>&>(stmt_.order_by)) {
      CODES_RETURN_IF_ERROR(rewrite(o.expr));
    }
    for (auto& g :
         const_cast<std::vector<std::unique_ptr<Expr>>&>(stmt_.group_by)) {
      CODES_RETURN_IF_ERROR(rewrite(g));
    }
    if (stmt_.having) {
      // Aliases inside HAVING are rewritten recursively at the top level
      // only; nested alias uses are rare in benchmark SQL.
      CODES_RETURN_IF_ERROR(
          rewrite(const_cast<std::unique_ptr<Expr>&>(stmt_.having)));
    }
    return Status::Ok();
  }

  Status ResolveExpr(const Expr& e) {
    if (e.kind == ExprKind::kColumnRef) {
      CODES_ASSIGN_OR_RETURN(
          e.resolved_index,
          scope_.ResolveColumn(source_.schema(), e.table, e.column));
      return Status::Ok();
    }
    if (e.kind == ExprKind::kInSubquery || e.kind == ExprKind::kScalarSubquery) {
      // Uncorrelated subqueries execute independently; results are cached
      // in subquery_cache_ at evaluation time.
    }
    for (const auto& child : e.children) {
      CODES_RETURN_IF_ERROR(ResolveExpr(*child));
    }
    return Status::Ok();
  }

  Status ResolveAll() {
    for (const auto& item : select_list()) {
      CODES_RETURN_IF_ERROR(ResolveExpr(*item.expr));
    }
    for (const auto& join : stmt_.joins) {
      if (join.condition) {
        CODES_RETURN_IF_ERROR(ResolveExpr(*join.condition));
      }
    }
    if (stmt_.where) {
      CODES_RETURN_IF_ERROR(ResolveExpr(*stmt_.where));
    }
    for (const auto& g : stmt_.group_by) {
      CODES_RETURN_IF_ERROR(ResolveExpr(*g));
    }
    if (stmt_.having) {
      CODES_RETURN_IF_ERROR(ResolveExpr(*stmt_.having));
    }
    for (const auto& o : stmt_.order_by) {
      CODES_RETURN_IF_ERROR(ResolveExpr(*o.expr));
    }
    return Status::Ok();
  }

  // ------------------------------------------------ access-path selection
  /// Cost rule: an index scan must not be estimated to touch more than
  /// this fraction of the table, else a sequential scan wins (an index
  /// scan pays a tree descent plus a RID sort on top of the row fetches).
  static constexpr double kIndexScanMaxSelectivity = 0.25;

  /// Equality on a non-unique index has no distinct-count statistic;
  /// assume a selective point lookup (passes the cost gate).
  static constexpr double kNonUniqueEqSelectivity = 0.1;

  /// One sargable conjunct: `col op literal` / `col BETWEEN lit AND lit`
  /// over a column of the first FROM table (flat offset 0).
  struct Sarg {
    int column = -1;
    IndexBound lo;
    IndexBound hi;
    bool equality = false;
  };

  /// Flattens the top-level AND chain of the WHERE clause. WHERE true
  /// implies every conjunct true, which is what lets any single conjunct
  /// act as an index prefilter.
  static void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
      CollectConjuncts(e->children[0].get(), out);
      CollectConjuncts(e->children[1].get(), out);
      return;
    }
    out->push_back(e);
  }

  static BinaryOp MirrorComparison(BinaryOp op) {
    switch (op) {
      case BinaryOp::kLt: return BinaryOp::kGt;
      case BinaryOp::kLe: return BinaryOp::kGe;
      case BinaryOp::kGt: return BinaryOp::kLt;
      case BinaryOp::kGe: return BinaryOp::kLe;
      default: return op;
    }
  }

  /// Extracts a sargable predicate from one conjunct, restricted to
  /// columns of the first FROM table (resolved flat index < first_width).
  /// NULL literals are never sargable (comparisons with NULL are never
  /// true). Bound Value pointers alias the statement's literals, which
  /// outlive the scan.
  static bool SargFromConjunct(const Expr& e, int first_width, Sarg* out) {
    if (e.kind == ExprKind::kBetween && !e.negated) {
      const Expr& col = *e.children[0];
      const Expr& lo = *e.children[1];
      const Expr& hi = *e.children[2];
      if (col.kind != ExprKind::kColumnRef || col.resolved_index < 0 ||
          col.resolved_index >= first_width) {
        return false;
      }
      if (lo.kind != ExprKind::kLiteral || lo.literal.is_null()) return false;
      if (hi.kind != ExprKind::kLiteral || hi.literal.is_null()) return false;
      out->column = col.resolved_index;
      out->lo = {&lo.literal, true};
      out->hi = {&hi.literal, true};
      return true;
    }
    if (e.kind != ExprKind::kBinary) return false;
    BinaryOp op = e.binary_op;
    if (op != BinaryOp::kEq && op != BinaryOp::kLt && op != BinaryOp::kLe &&
        op != BinaryOp::kGt && op != BinaryOp::kGe) {
      return false;
    }
    const Expr* lhs = e.children[0].get();
    const Expr* rhs = e.children[1].get();
    if (lhs->kind == ExprKind::kLiteral && rhs->kind == ExprKind::kColumnRef) {
      std::swap(lhs, rhs);
      op = MirrorComparison(op);  // 5 < col  ==  col > 5
    }
    if (lhs->kind != ExprKind::kColumnRef || rhs->kind != ExprKind::kLiteral) {
      return false;
    }
    if (lhs->resolved_index < 0 || lhs->resolved_index >= first_width) {
      return false;
    }
    const Value& lit = rhs->literal;
    if (lit.is_null()) return false;
    out->column = lhs->resolved_index;
    switch (op) {
      case BinaryOp::kEq:
        out->lo = {&lit, true};
        out->hi = {&lit, true};
        out->equality = true;
        break;
      case BinaryOp::kLt: out->hi = {&lit, false}; break;
      case BinaryOp::kLe: out->hi = {&lit, true}; break;
      case BinaryOp::kGt: out->lo = {&lit, false}; break;
      case BinaryOp::kGe: out->lo = {&lit, true}; break;
      default: return false;
    }
    return true;
  }

  /// An index scan evaluates the WHERE clause over fewer rows than a full
  /// scan, so any WHERE subexpression that can raise an execution error
  /// (unknown function, bare '*', misused aggregate, erroring subquery)
  /// would make error behavior depend on the access path. Such clauses
  /// always take the sequential path.
  static bool SafeForPrefilter(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kStar:
      case ExprKind::kFunction:
      case ExprKind::kInSubquery:
      case ExprKind::kScalarSubquery:
        return false;
      default:
        break;
    }
    for (const auto& c : e.children) {
      if (!SafeForPrefilter(*c)) return false;
    }
    return true;
  }

  /// Index ordering is Value::Compare (NULL-free); predicate evaluation is
  /// EvalBinary. The two agree exactly when the column values and the
  /// literal bounds sit on the same side of the numeric/text divide, so an
  /// index is usable only for a clean same-class match.
  static bool SargMatchesStats(const Sarg& s, const ColumnIndexStats& st) {
    using VC = ColumnIndexStats::ValueClass;
    if (st.value_class == VC::kMixed) return false;
    if (st.value_class == VC::kEmpty) return true;  // no rows either way
    if (s.lo.value == nullptr && s.hi.value == nullptr) return false;
    auto bound_ok = [&st](const IndexBound& b) {
      if (b.value == nullptr) return true;
      if (b.value->is_numeric()) return st.value_class == VC::kNumeric;
      if (b.value->is_text()) return st.value_class == VC::kText;
      return false;
    };
    return bound_ok(s.lo) && bound_ok(s.hi);
  }

  /// Fraction of the table the scan is expected to touch. Numeric ranges
  /// use a uniform estimate over the index's [min, max]; text ranges have
  /// no histogram and are treated as unselective.
  static double EstimateSelectivity(const Sarg& s,
                                    const ColumnIndexStats& st) {
    if (st.entries == 0) return 0.0;
    if (s.equality) {
      if (st.unique) return 1.0 / static_cast<double>(st.entries);
      return kNonUniqueEqSelectivity;
    }
    if (st.value_class != ColumnIndexStats::ValueClass::kNumeric) return 1.0;
    double min = st.min_value.ToNumeric();
    double max = st.max_value.ToNumeric();
    double lo = s.lo.value != nullptr ? s.lo.value->ToNumeric() : min;
    double hi = s.hi.value != nullptr ? s.hi.value->ToNumeric() : max;
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi < lo) return 0.0;
    if (max <= min) return 1.0;  // single distinct key
    return (hi - lo) / (max - min);
  }

  /// Picks the access path that seeds the plan for backends without a
  /// direct row vector: the first sargable WHERE conjunct with a usable,
  /// selective-enough index wins; otherwise sequential scan. Never returns
  /// null.
  std::unique_ptr<RowCursor> ChooseSeedCursor(int table_index,
                                              int first_width) {
    static Counter& index_paths =
        MetricsRegistry::Global().GetCounter("storage.path.index_scan");
    static Counter& seq_paths =
        MetricsRegistry::Global().GetCounter("storage.path.seq_scan");
    std::unique_ptr<RowCursor> chosen;
    if (stmt_.where != nullptr && SafeForPrefilter(*stmt_.where)) {
      std::vector<const Expr*> conjuncts;
      CollectConjuncts(stmt_.where.get(), &conjuncts);
      for (const Expr* conjunct : conjuncts) {
        Sarg sarg;
        if (!SargFromConjunct(*conjunct, first_width, &sarg)) continue;
        ColumnIndexStats stats;
        if (!source_.IndexStats(table_index, sarg.column, &stats)) continue;
        if (!SargMatchesStats(sarg, stats)) continue;
        if (EstimateSelectivity(sarg, stats) > kIndexScanMaxSelectivity) {
          continue;
        }
        chosen = source_.IndexScan(table_index, sarg.column, sarg.lo, sarg.hi);
        if (chosen != nullptr) break;
      }
    }
    if (chosen != nullptr) {
      index_paths.Increment();
    } else {
      seq_paths.Increment();
      chosen = source_.Scan(table_index);
    }
    return chosen;
  }

  /// Materializes a join's right table when the backend has no direct row
  /// vector. Right-table rows are not charged here — matching historical
  /// behavior, where only combined rows are charged during joins.
  Result<const std::vector<Row>*> MaterializeTable(
      int table_index, std::vector<Row>* storage) {
    if (const std::vector<Row>* direct = source_.DirectRows(table_index)) {
      return direct;
    }
    storage->clear();
    storage->reserve(source_.SourceRowCount(table_index));
    std::unique_ptr<RowCursor> cursor = source_.Scan(table_index);
    Row row;
    while (cursor->Next(&row)) {
      storage->push_back(std::move(row));
      if (storage->size() > kMaxIntermediateRows) {
        return Status::ExecutionError("scan result too large");
      }
    }
    CODES_RETURN_IF_ERROR(cursor->status());
    return storage;
  }

  // ------------------------------------------------------------ join phase
  /// Computes the joined, WHERE-filtered working rows.
  Result<std::vector<Row>> ProduceJoinedRows() {
    // Seed with the first table through its chosen access path.
    const auto& entries = scope_.entries();
    const int first_table = entries[0].table_index;
    const int first_width = static_cast<int>(
        source_.schema().tables[first_table].columns.size());
    std::vector<Row> current;
    if (const std::vector<Row>* direct = source_.DirectRows(first_table)) {
      current.reserve(direct->size());
      for (const auto& row : *direct) {
        current.push_back(row);
        CODES_RETURN_IF_ERROR(ChargeRow(current.back()));
      }
    } else {
      std::unique_ptr<RowCursor> cursor =
          ChooseSeedCursor(first_table, first_width);
      current.reserve(source_.SourceRowCount(first_table));
      Row row;
      while (cursor->Next(&row)) {
        current.push_back(std::move(row));
        CODES_RETURN_IF_ERROR(ChargeRow(current.back()));
      }
      CODES_RETURN_IF_ERROR(cursor->status());
    }
    int current_width = first_width;

    for (size_t j = 0; j < stmt_.joins.size(); ++j) {
      const JoinClause& join = stmt_.joins[j];
      const ScopeEntry& entry = entries[j + 1];
      std::vector<Row> right_storage;
      CODES_ASSIGN_OR_RETURN(
          const std::vector<Row>* right_rows,
          MaterializeTable(entry.table_index, &right_storage));
      int right_width = static_cast<int>(
          source_.schema().tables[entry.table_index].columns.size());

      // Try hash join: condition of form colA = colB with one side in the
      // accumulated prefix and the other in the new table.
      int left_key = -1;
      int right_key = -1;
      if (join.condition && join.condition->kind == ExprKind::kBinary &&
          join.condition->binary_op == BinaryOp::kEq) {
        const Expr& lhs = *join.condition->children[0];
        const Expr& rhs = *join.condition->children[1];
        if (lhs.kind == ExprKind::kColumnRef &&
            rhs.kind == ExprKind::kColumnRef) {
          int li = lhs.resolved_index;
          int ri = rhs.resolved_index;
          int new_offset = entry.offset;
          if (li < new_offset && ri >= new_offset) {
            left_key = li;
            right_key = ri - new_offset;
          } else if (ri < new_offset && li >= new_offset) {
            left_key = ri;
            right_key = li - new_offset;
          }
        }
      }

      std::vector<Row> next;
      if (left_key >= 0) {
        // Hash join on equality keys.
        std::unordered_multimap<size_t, const Row*> table;
        table.reserve(right_rows->size());
        for (const auto& rrow : *right_rows) {
          if (rrow[right_key].is_null()) continue;
          table.emplace(rrow[right_key].Hash(), &rrow);
        }
        for (const auto& lrow : current) {
          const Value& key = lrow[left_key];
          if (key.is_null()) continue;
          auto range = table.equal_range(key.Hash());
          for (auto it = range.first; it != range.second; ++it) {
            const Row& rrow = *it->second;
            if (!key.SqlEquals(rrow[right_key])) continue;
            Row combined = lrow;
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            next.push_back(std::move(combined));
            CODES_RETURN_IF_ERROR(ChargeRow(next.back()));
            if (next.size() > kMaxIntermediateRows) {
              return Status::ExecutionError("join result too large");
            }
          }
        }
      } else {
        // Nested-loop join with optional theta condition.
        for (const auto& lrow : current) {
          for (const auto& rrow : *right_rows) {
            Row combined = lrow;
            combined.insert(combined.end(), rrow.begin(), rrow.end());
            if (join.condition) {
              CODES_ASSIGN_OR_RETURN(Value v, Eval(*join.condition, combined));
              if (!Truthy(v)) continue;
            }
            next.push_back(std::move(combined));
            CODES_RETURN_IF_ERROR(ChargeRow(next.back()));
            if (next.size() > kMaxIntermediateRows) {
              return Status::ExecutionError("join result too large");
            }
          }
        }
      }
      current = std::move(next);
      current_width += right_width;
      (void)current_width;
    }

    if (stmt_.where) {
      std::vector<Row> filtered;
      filtered.reserve(current.size());
      for (auto& row : current) {
        CODES_ASSIGN_OR_RETURN(Value v, Eval(*stmt_.where, row));
        if (Truthy(v)) filtered.push_back(std::move(row));
      }
      current = std::move(filtered);
    }
    return current;
  }

  // ------------------------------------------------------- expression eval
  static bool Truthy(const Value& v) {
    if (v.is_null()) return false;
    return v.ToNumeric() != 0.0;
  }

  /// Three-valued `x [NOT] IN (...)`: TRUE on a match, otherwise NULL when
  /// the list contains a NULL (the comparison to it is unknown), else
  /// FALSE. NOT IN inverts TRUE/FALSE and keeps NULL.
  static Value InResult(const Value& v, const std::vector<Value>& items,
                        bool negated) {
    bool has_null = false;
    for (const auto& item : items) {
      if (item.is_null()) {
        has_null = true;
        continue;
      }
      if (v.SqlEquals(item)) {
        return Value(static_cast<int64_t>(negated ? 0 : 1));
      }
    }
    if (has_null) return Value();
    return Value(static_cast<int64_t>(negated ? 1 : 0));
  }

  /// Evaluates `e` against a working row. Aggregate nodes must have their
  /// `agg_result` precomputed (use_agg_result set) when this is called in
  /// post-aggregation context.
  Result<Value> Eval(const Expr& e, const Row& row) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kColumnRef:
        if (e.resolved_index < 0 ||
            e.resolved_index >= static_cast<int>(row.size())) {
          return Status::Internal("unresolved column " + e.column);
        }
        return row[e.resolved_index];
      case ExprKind::kStar:
        return Status::ExecutionError("'*' outside COUNT(*)");
      case ExprKind::kUnary: {
        CODES_ASSIGN_OR_RETURN(Value inner, Eval(*e.children[0], row));
        switch (e.unary_op) {
          case UnaryOp::kNot:
            if (inner.is_null()) return Value();
            return Value(static_cast<int64_t>(Truthy(inner) ? 0 : 1));
          case UnaryOp::kNegate:
            if (inner.is_null()) return Value();
            if (inner.is_integer() &&
                inner.AsInteger() != std::numeric_limits<int64_t>::min()) {
              return Value(-inner.AsInteger());
            }
            return Value(-inner.ToNumeric());
          case UnaryOp::kIsNull:
            return Value(static_cast<int64_t>(inner.is_null() ? 1 : 0));
          case UnaryOp::kIsNotNull:
            return Value(static_cast<int64_t>(inner.is_null() ? 0 : 1));
        }
        return Value();
      }
      case ExprKind::kBinary:
        return EvalBinary(e, row);
      case ExprKind::kFunction:
        return EvalFunction(e, row);
      case ExprKind::kBetween: {
        CODES_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], row));
        CODES_ASSIGN_OR_RETURN(Value lo, Eval(*e.children[1], row));
        CODES_ASSIGN_OR_RETURN(Value hi, Eval(*e.children[2], row));
        if (v.is_null() || lo.is_null() || hi.is_null()) return Value();
        bool in_range = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
        if (e.negated) in_range = !in_range;
        return Value(static_cast<int64_t>(in_range ? 1 : 0));
      }
      case ExprKind::kInList: {
        CODES_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], row));
        if (v.is_null()) return Value();
        return InResult(v, e.in_list, e.negated);
      }
      case ExprKind::kInSubquery: {
        CODES_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], row));
        if (v.is_null()) return Value();
        CODES_ASSIGN_OR_RETURN(const std::vector<Value>* sub,
                               SubqueryValues(e));
        return InResult(v, *sub, e.negated);
      }
      case ExprKind::kScalarSubquery: {
        CODES_ASSIGN_OR_RETURN(const std::vector<Value>* sub,
                               SubqueryValues(e));
        if (sub->empty()) return Value();
        return (*sub)[0];
      }
      case ExprKind::kCast: {
        CODES_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], row));
        if (v.is_null()) return Value();
        switch (e.cast_type) {
          case DataType::kInteger: {
            // Out-of-range double→int64 conversion is UB; saturate like a
            // checked cast instead.
            double d = v.ToNumeric();
            if (std::isnan(d)) return Value(static_cast<int64_t>(0));
            if (d >= 9223372036854775808.0) {  // 2^63
              return Value(std::numeric_limits<int64_t>::max());
            }
            if (d < -9223372036854775808.0) {
              return Value(std::numeric_limits<int64_t>::min());
            }
            return Value(static_cast<int64_t>(d));
          }
          case DataType::kReal:
            return Value(v.ToNumeric());
          case DataType::kText:
            return Value(v.ToString());
        }
        return Value();
      }
    }
    return Status::Internal("unhandled expression kind");
  }

  Result<Value> EvalBinary(const Expr& e, const Row& row) {
    // Short-circuit logic with SQLite-style NULL propagation.
    if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
      CODES_ASSIGN_OR_RETURN(Value l, Eval(*e.children[0], row));
      CODES_ASSIGN_OR_RETURN(Value r, Eval(*e.children[1], row));
      bool lnull = l.is_null();
      bool rnull = r.is_null();
      bool lt = !lnull && Truthy(l);
      bool rt = !rnull && Truthy(r);
      if (e.binary_op == BinaryOp::kAnd) {
        if ((!lnull && !lt) || (!rnull && !rt)) {
          return Value(static_cast<int64_t>(0));
        }
        if (lnull || rnull) return Value();
        return Value(static_cast<int64_t>(1));
      }
      if (lt || rt) return Value(static_cast<int64_t>(1));
      if (lnull || rnull) return Value();
      return Value(static_cast<int64_t>(0));
    }

    CODES_ASSIGN_OR_RETURN(Value l, Eval(*e.children[0], row));
    CODES_ASSIGN_OR_RETURN(Value r, Eval(*e.children[1], row));

    switch (e.binary_op) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        if (l.is_null() || r.is_null()) return Value();
        // Text-vs-text compares lexicographically; otherwise numeric.
        int cmp;
        if (l.is_text() && r.is_text()) {
          cmp = l.Compare(r);
        } else if (l.is_numeric() || r.is_numeric()) {
          double a = l.ToNumeric();
          double b = r.ToNumeric();
          cmp = (a < b) ? -1 : (a > b ? 1 : 0);
          // Equality between text and number also requires exact text match
          // of the numeric rendering to avoid '2009-01-01' == 2009.
          if (cmp == 0 && l.is_text() != r.is_text()) {
            const Value& text_side = l.is_text() ? l : r;
            const Value& num_side = l.is_text() ? r : l;
            if (Trim(text_side.AsText()) != num_side.ToString() &&
                text_side.ToNumeric() != num_side.ToNumeric()) {
              cmp = 1;
            }
          }
        } else {
          cmp = l.Compare(r);
        }
        bool out = false;
        switch (e.binary_op) {
          case BinaryOp::kEq: out = (cmp == 0); break;
          case BinaryOp::kNe: out = (cmp != 0); break;
          case BinaryOp::kLt: out = (cmp < 0); break;
          case BinaryOp::kLe: out = (cmp <= 0); break;
          case BinaryOp::kGt: out = (cmp > 0); break;
          case BinaryOp::kGe: out = (cmp >= 0); break;
          default: break;
        }
        return Value(static_cast<int64_t>(out ? 1 : 0));
      }
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv: {
        if (l.is_null() || r.is_null()) return Value();
        double a = l.ToNumeric();
        double b = r.ToNumeric();
        bool both_int = l.is_integer() && r.is_integer();
        // Integer arithmetic widens to REAL on overflow instead of
        // wrapping (signed overflow is UB and trips UBSan).
        int64_t iout = 0;
        switch (e.binary_op) {
          case BinaryOp::kAdd:
            if (both_int && !__builtin_add_overflow(l.AsInteger(),
                                                    r.AsInteger(), &iout)) {
              return Value(iout);
            }
            return Value(a + b);
          case BinaryOp::kSub:
            if (both_int && !__builtin_sub_overflow(l.AsInteger(),
                                                    r.AsInteger(), &iout)) {
              return Value(iout);
            }
            return Value(a - b);
          case BinaryOp::kMul:
            if (both_int && !__builtin_mul_overflow(l.AsInteger(),
                                                    r.AsInteger(), &iout)) {
              return Value(iout);
            }
            return Value(a * b);
          case BinaryOp::kDiv:
            if (b == 0.0) return Value();
            if (both_int && r.AsInteger() != 0 &&
                !(l.AsInteger() == std::numeric_limits<int64_t>::min() &&
                  r.AsInteger() == -1)) {
              return Value(l.AsInteger() / r.AsInteger());
            }
            return Value(a / b);
          default:
            break;
        }
        return Value();
      }
      case BinaryOp::kConcat: {
        if (l.is_null() || r.is_null()) return Value();
        return Value(l.ToString() + r.ToString());
      }
      case BinaryOp::kLike:
      case BinaryOp::kNotLike: {
        if (l.is_null() || r.is_null()) return Value();
        bool match = LikeMatch(l.ToString(), r.ToString());
        if (e.binary_op == BinaryOp::kNotLike) match = !match;
        return Value(static_cast<int64_t>(match ? 1 : 0));
      }
      default:
        break;
    }
    return Status::Internal("unhandled binary op");
  }

  /// SQL LIKE with % and _ wildcards, ASCII case-insensitive.
  static bool LikeMatch(const std::string& text_raw,
                        const std::string& pattern_raw) {
    std::string text = ToLower(text_raw);
    std::string pattern = ToLower(pattern_raw);
    size_t ti = 0, pi = 0, star_ti = std::string::npos, star_pi = 0;
    while (ti < text.size()) {
      if (pi < pattern.size() &&
          (pattern[pi] == '_' || pattern[pi] == text[ti])) {
        ++ti;
        ++pi;
      } else if (pi < pattern.size() && pattern[pi] == '%') {
        star_pi = pi++;
        star_ti = ti;
      } else if (star_ti != std::string::npos) {
        pi = star_pi + 1;
        ti = ++star_ti;
      } else {
        return false;
      }
    }
    while (pi < pattern.size() && pattern[pi] == '%') ++pi;
    return pi == pattern.size();
  }

  Result<Value> EvalFunction(const Expr& e, const Row& row) {
    if (e.IsAggregate()) {
      if (!e.use_agg_result) {
        return Status::ExecutionError("aggregate " + e.function +
                                      " used outside aggregation context");
      }
      return e.agg_result;
    }
    auto arg = [&](size_t i) -> Result<Value> {
      if (i >= e.children.size()) {
        return Status::ExecutionError(e.function + ": missing argument");
      }
      return Eval(*e.children[i], row);
    };
    const std::string& f = e.function;
    if (f == "ABS") {
      CODES_ASSIGN_OR_RETURN(Value v, arg(0));
      if (v.is_null()) return Value();
      if (v.is_integer() &&
          v.AsInteger() != std::numeric_limits<int64_t>::min()) {
        return Value(std::abs(v.AsInteger()));
      }
      return Value(std::abs(v.ToNumeric()));
    }
    if (f == "ROUND") {
      CODES_ASSIGN_OR_RETURN(Value v, arg(0));
      if (v.is_null()) return Value();
      int64_t digits = 0;
      if (e.children.size() > 1) {
        CODES_ASSIGN_OR_RETURN(Value d, arg(1));
        digits = static_cast<int64_t>(std::clamp(d.ToNumeric(), -30.0, 30.0));
      }
      double scale = std::pow(10.0, static_cast<double>(digits));
      double scaled = std::round(v.ToNumeric() * scale) / scale;
      if (!std::isfinite(scaled)) return Value(v.ToNumeric());
      return Value(scaled);
    }
    if (f == "LENGTH") {
      CODES_ASSIGN_OR_RETURN(Value v, arg(0));
      if (v.is_null()) return Value();
      return Value(static_cast<int64_t>(v.ToString().size()));
    }
    if (f == "UPPER" || f == "LOWER") {
      CODES_ASSIGN_OR_RETURN(Value v, arg(0));
      if (v.is_null()) return Value();
      return Value(f == "UPPER" ? ToUpper(v.ToString())
                                : ToLower(v.ToString()));
    }
    if (f == "SUBSTR" || f == "SUBSTRING") {
      CODES_ASSIGN_OR_RETURN(Value v, arg(0));
      if (v.is_null()) return Value();
      CODES_ASSIGN_OR_RETURN(Value start_v, arg(1));
      std::string s = v.ToString();
      int64_t start = static_cast<int64_t>(start_v.ToNumeric());
      int64_t len = static_cast<int64_t>(s.size());
      if (e.children.size() > 2) {
        CODES_ASSIGN_OR_RETURN(Value len_v, arg(2));
        len = static_cast<int64_t>(len_v.ToNumeric());
      }
      // 1-based indexing per SQL; negative start counts from the end.
      int64_t begin = start > 0 ? start - 1
                                : std::max<int64_t>(0, static_cast<int64_t>(s.size()) + start);
      if (begin >= static_cast<int64_t>(s.size()) || len <= 0) {
        return Value(std::string());
      }
      return Value(s.substr(static_cast<size_t>(begin),
                            static_cast<size_t>(len)));
    }
    if (f == "COALESCE") {
      for (size_t i = 0; i < e.children.size(); ++i) {
        CODES_ASSIGN_OR_RETURN(Value v, arg(i));
        if (!v.is_null()) return v;
      }
      return Value();
    }
    return Status::ExecutionError("unknown function: " + f);
  }

  /// First-column values of an uncorrelated subquery, cached per node.
  /// Subquery execution shares the runner's guard and counts one level of
  /// guarded nesting depth.
  Result<const std::vector<Value>*> SubqueryValues(const Expr& e) {
    auto it = subquery_cache_.find(&e);
    if (it == subquery_cache_.end()) {
      if (guard_ != nullptr) CODES_RETURN_IF_ERROR(guard_->EnterNested());
      Executor sub_exec(source_);
      auto result = sub_exec.Execute(*e.subquery, guard_);
      if (guard_ != nullptr) guard_->LeaveNested();
      if (!result.ok()) return result.status();
      if (result->NumColumns() < 1) {
        return Status::ExecutionError("subquery returned no columns");
      }
      std::vector<Value> values;
      values.reserve(result->rows.size());
      for (const auto& r : result->rows) values.push_back(r[0]);
      it = subquery_cache_.emplace(&e, std::move(values)).first;
    }
    return &it->second;
  }

  // ------------------------------------------------------ projection phase
  Result<ResultTable> Project(std::vector<Row> rows) {
    bool has_agg = !stmt_.group_by.empty();
    for (const auto& item : select_list()) {
      if (item.expr->ContainsAggregate()) has_agg = true;
    }
    if (stmt_.having && stmt_.having->ContainsAggregate()) has_agg = true;
    for (const auto& o : stmt_.order_by) {
      if (o.expr->ContainsAggregate()) has_agg = true;
    }

    ResultTable result;
    for (const auto& item : select_list()) {
      result.column_names.push_back(
          item.alias.empty() ? item.expr->ToSql() : item.alias);
    }

    // Each output row remembers its ORDER BY keys.
    struct Keyed {
      Row out;
      std::vector<Value> keys;
    };
    std::vector<Keyed> keyed_rows;

    if (!has_agg) {
      for (const auto& row : rows) {
        Keyed k;
        for (const auto& item : select_list()) {
          CODES_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, row));
          k.out.push_back(std::move(v));
        }
        for (const auto& o : stmt_.order_by) {
          CODES_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, row));
          k.keys.push_back(std::move(v));
        }
        CODES_RETURN_IF_ERROR(ChargeRow(k.out));
        keyed_rows.push_back(std::move(k));
      }
    } else {
      // Group rows.
      std::unordered_map<Row, std::vector<const Row*>, RowHash, RowEq> groups;
      std::vector<Row> group_order;  // deterministic iteration
      for (const auto& row : rows) {
        Row key;
        for (const auto& g : stmt_.group_by) {
          CODES_ASSIGN_OR_RETURN(Value v, Eval(*g, row));
          key.push_back(std::move(v));
        }
        auto [it, inserted] = groups.try_emplace(key);
        if (inserted) group_order.push_back(key);
        it->second.push_back(&row);
      }
      // Global aggregation over zero rows still yields one group.
      if (stmt_.group_by.empty() && groups.empty()) {
        groups.try_emplace(Row{});
        group_order.push_back(Row{});
      }

      // Collect all aggregate nodes referenced by the query.
      std::vector<const Expr*> agg_nodes;
      auto collect = [&agg_nodes](const Expr& e, auto&& self) -> void {
        if (e.IsAggregate()) {
          agg_nodes.push_back(&e);
          return;  // no nested aggregates
        }
        for (const auto& c : e.children) self(*c, self);
      };
      for (const auto& item : select_list()) collect(*item.expr, collect);
      if (stmt_.having) collect(*stmt_.having, collect);
      for (const auto& o : stmt_.order_by) collect(*o.expr, collect);

      for (const auto& key : group_order) {
        const auto& members = groups[key];
        // Compute aggregates for this group.
        for (const Expr* agg : agg_nodes) {
          CODES_ASSIGN_OR_RETURN(agg->agg_result,
                                 ComputeAggregate(*agg, members));
          agg->use_agg_result = true;
        }
        // Representative row for evaluating group keys inside exprs.
        Row representative;
        if (!members.empty()) {
          representative = *members[0];
        } else {
          representative.assign(static_cast<size_t>(scope_.width()), Value());
        }
        if (stmt_.having) {
          CODES_ASSIGN_OR_RETURN(Value hv, Eval(*stmt_.having, representative));
          if (!Truthy(hv)) continue;
        }
        Keyed k;
        for (const auto& item : select_list()) {
          CODES_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, representative));
          k.out.push_back(std::move(v));
        }
        for (const auto& o : stmt_.order_by) {
          CODES_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, representative));
          k.keys.push_back(std::move(v));
        }
        CODES_RETURN_IF_ERROR(ChargeRow(k.out));
        keyed_rows.push_back(std::move(k));
      }
      // Reset aggregate scratch state so the AST can be reused.
      for (const Expr* agg : agg_nodes) agg->use_agg_result = false;
    }

    // DISTINCT.
    if (stmt_.distinct) {
      std::unordered_map<Row, bool, RowHash, RowEq> seen;
      std::vector<Keyed> unique;
      for (auto& k : keyed_rows) {
        if (seen.try_emplace(k.out, true).second) {
          unique.push_back(std::move(k));
        }
      }
      keyed_rows = std::move(unique);
    }

    // ORDER BY (stable sort keeps input order for ties).
    if (!stmt_.order_by.empty()) {
      std::stable_sort(keyed_rows.begin(), keyed_rows.end(),
                       [this](const Keyed& a, const Keyed& b) {
                         for (size_t i = 0; i < stmt_.order_by.size(); ++i) {
                           int cmp = a.keys[i].Compare(b.keys[i]);
                           if (cmp != 0) {
                             return stmt_.order_by[i].ascending ? cmp < 0
                                                                : cmp > 0;
                           }
                         }
                         return false;
                       });
    }

    // LIMIT.
    if (stmt_.limit.has_value() &&
        keyed_rows.size() > static_cast<size_t>(*stmt_.limit)) {
      keyed_rows.resize(static_cast<size_t>(std::max<int64_t>(0, *stmt_.limit)));
    }

    result.rows.reserve(keyed_rows.size());
    for (auto& k : keyed_rows) result.rows.push_back(std::move(k.out));
    return result;
  }

  Result<Value> ComputeAggregate(const Expr& agg,
                                 const std::vector<const Row*>& members) {
    const std::string& f = agg.function;
    bool star = !agg.children.empty() &&
                agg.children[0]->kind == ExprKind::kStar;
    if (f == "COUNT" && (agg.children.empty() || star)) {
      return Value(static_cast<int64_t>(members.size()));
    }
    if (agg.children.empty()) {
      return Status::ExecutionError(f + " requires an argument");
    }
    std::vector<Value> values;
    values.reserve(members.size());
    for (const Row* row : members) {
      CODES_ASSIGN_OR_RETURN(Value v, Eval(*agg.children[0], *row));
      if (!v.is_null()) values.push_back(std::move(v));
    }
    if (agg.distinct_arg) {
      std::vector<Value> unique;
      for (auto& v : values) {
        bool seen = false;
        for (const auto& u : unique) {
          if (u.Compare(v) == 0) {
            seen = true;
            break;
          }
        }
        if (!seen) unique.push_back(std::move(v));
      }
      values = std::move(unique);
    }
    if (f == "COUNT") return Value(static_cast<int64_t>(values.size()));
    if (values.empty()) return Value();  // SUM/AVG/MIN/MAX of nothing: NULL
    if (f == "SUM" || f == "AVG") {
      bool all_int = true;
      double total = 0;
      int64_t itotal = 0;
      for (const auto& v : values) {
        total += v.ToNumeric();
        if (!v.is_integer() ||
            __builtin_add_overflow(itotal, v.AsInteger(), &itotal)) {
          all_int = false;  // overflow: report the REAL running sum
        }
      }
      if (f == "SUM") {
        if (all_int) return Value(itotal);
        return Value(total);
      }
      return Value(total / static_cast<double>(values.size()));
    }
    if (f == "MIN" || f == "MAX") {
      const Value* best = &values[0];
      for (const auto& v : values) {
        int cmp = v.Compare(*best);
        if ((f == "MIN" && cmp < 0) || (f == "MAX" && cmp > 0)) best = &v;
      }
      return *best;
    }
    return Status::ExecutionError("unknown aggregate: " + f);
  }

  const ExecSource& source_;
  const SelectStatement& stmt_;
  ExecGuard* guard_;            ///< may be null (unguarded)
  size_t step_rows_ = 0;        ///< rows since start, for the step failpoint
  Scope scope_;
  bool use_expanded_ = false;
  std::vector<SelectItem> expanded_select_;
  std::unordered_map<const Expr*, std::vector<Value>> subquery_cache_;
};

/// Multiset-combining for set operations.
std::vector<Row> DedupeRows(const std::vector<Row>& rows) {
  std::unordered_map<Row, bool, RowHash, RowEq> seen;
  std::vector<Row> out;
  for (const auto& r : rows) {
    if (seen.try_emplace(r, true).second) out.push_back(r);
  }
  return out;
}

}  // namespace

Result<ResultTable> Executor::Execute(const SelectStatement& stmt,
                                      ExecGuard* guard) const {
  SelectRunner runner(source_, stmt, guard);
  auto left = runner.Run();
  if (!left.ok()) return left.status();
  if (stmt.set_op == SetOp::kNone) return left;

  // The right arm of a set operation counts one level of guarded nesting.
  if (guard != nullptr) CODES_RETURN_IF_ERROR(guard->EnterNested());
  auto right = Execute(*stmt.set_rhs, guard);
  if (guard != nullptr) guard->LeaveNested();
  if (!right.ok()) return right.status();
  if (left->NumColumns() != right->NumColumns()) {
    return Status::ExecutionError("set operands have different column counts");
  }
  ResultTable out;
  out.column_names = left->column_names;
  switch (stmt.set_op) {
    case SetOp::kUnionAll: {
      out.rows = left->rows;
      out.rows.insert(out.rows.end(), right->rows.begin(), right->rows.end());
      break;
    }
    case SetOp::kUnion: {
      auto all = left->rows;
      all.insert(all.end(), right->rows.begin(), right->rows.end());
      out.rows = DedupeRows(all);
      break;
    }
    case SetOp::kIntersect: {
      std::unordered_map<Row, bool, RowHash, RowEq> in_right;
      for (const auto& r : right->rows) in_right.try_emplace(r, true);
      for (const auto& r : DedupeRows(left->rows)) {
        if (in_right.count(r)) out.rows.push_back(r);
      }
      break;
    }
    case SetOp::kExcept: {
      std::unordered_map<Row, bool, RowHash, RowEq> in_right;
      for (const auto& r : right->rows) in_right.try_emplace(r, true);
      for (const auto& r : DedupeRows(left->rows)) {
        if (!in_right.count(r)) out.rows.push_back(r);
      }
      break;
    }
    case SetOp::kNone:
      break;
  }
  return out;
}

Result<ResultTable> ExecuteSql(const ExecSource& source, std::string_view sql,
                               ExecGuard* guard) {
  CODES_ASSIGN_OR_RETURN(auto stmt, ParseSql(sql));
  Executor executor(source);
  return executor.Execute(*stmt, guard);
}

bool IsExecutable(const ExecSource& source, std::string_view sql) {
  return ExecuteSql(source, sql).ok();
}

}  // namespace codes::sql
