#include "sqlengine/value.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/status.h"

namespace codes::sql {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInteger:
      return "INTEGER";
    case DataType::kReal:
      return "REAL";
    case DataType::kText:
      return "TEXT";
  }
  return "TEXT";
}

int64_t Value::AsInteger() const {
  CODES_CHECK(is_integer());
  return std::get<int64_t>(data_);
}

double Value::AsReal() const {
  CODES_CHECK(is_real());
  return std::get<double>(data_);
}

const std::string& Value::AsText() const {
  CODES_CHECK(is_text());
  return std::get<std::string>(data_);
}

double Value::ToNumeric() const {
  if (is_integer()) return static_cast<double>(std::get<int64_t>(data_));
  if (is_real()) return std::get<double>(data_);
  if (is_text()) {
    // SQLite-style numeric coercion: parse a leading decimal number only.
    // Bare strtod also accepts "inf", "nan", and hex floats, so a value
    // like 'Nancy' would coerce to NaN and poison every comparison
    // against it (NaN != NaN).
    const std::string& s = std::get<std::string>(data_);
    size_t i = 0;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t j = i;
    if (j < s.size() && (s[j] == '+' || s[j] == '-')) ++j;
    bool numeric =
        j < s.size() &&
        (std::isdigit(static_cast<unsigned char>(s[j])) ||
         (s[j] == '.' && j + 1 < s.size() &&
          std::isdigit(static_cast<unsigned char>(s[j + 1]))));
    if (!numeric) return 0.0;
    if (s[j] == '0' && j + 1 < s.size() &&
        (s[j + 1] == 'x' || s[j + 1] == 'X')) {
      return 0.0;  // no hex floats under numeric affinity
    }
    return std::strtod(s.c_str() + i, nullptr);
  }
  return 0.0;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_integer()) return std::to_string(std::get<int64_t>(data_));
  if (is_real()) {
    double v = std::get<double>(data_);
    // Integral reals print without a trailing ".0" mess; otherwise use a
    // compact fixed representation that is stable across platforms.
    char buf[64];
    if (std::floor(v) == v && std::abs(v) < 1e15) {
      std::snprintf(buf, sizeof(buf), "%.1f", v);
    } else {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
    }
    return buf;
  }
  return std::get<std::string>(data_);
}

std::string Value::ToSqlLiteral() const {
  if (is_text()) {
    std::string out = "'";
    for (char c : std::get<std::string>(data_)) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return ToString();
}

int Value::Compare(const Value& other) const {
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(*this);
  int rb = rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  if (ra == 0) return 0;  // both NULL
  if (ra == 1) {
    double a = ToNumeric();
    double b = other.ToNumeric();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  const std::string& a = AsText();
  const std::string& b = other.AsText();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  if (is_numeric() && other.is_numeric()) {
    return ToNumeric() == other.ToNumeric();
  }
  if (is_text() && other.is_text()) return AsText() == other.AsText();
  // Mixed text/numeric: compare via numeric coercion, matching SQLite
  // affinity when a numeric-looking string meets a number.
  return false;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b9;
  if (is_numeric()) {
    double v = ToNumeric();
    if (v == 0.0) v = 0.0;  // normalize -0.0
    return std::hash<double>{}(v);
  }
  return std::hash<std::string>{}(AsText());
}

}  // namespace codes::sql
