#include "augment/augmentation.h"

#include <algorithm>
#include <cctype>

#include "common/status.h"
#include "dataset/db_generator.h"
#include "dataset/perturb.h"
#include "dataset/templates.h"
#include "sqlengine/executor.h"

namespace codes {

namespace {

constexpr const char* kCarrierPrefixes[] = {
    "Could you tell me ", "I would like to know ", "Please find ",
    "Can you show ",
};

Text2SqlSample SampleFromInstance(const TemplateInstance& inst,
                                  int db_index) {
  Text2SqlSample sample;
  sample.db_index = db_index;
  sample.question = inst.question;
  sample.sql = inst.sql_text;
  sample.template_id = inst.template_id;
  sample.used_items = inst.used_items;
  return sample;
}

}  // namespace

std::string ParaphraseQuestion(const std::string& question, Rng& rng) {
  std::string out = question;
  // Apply a random subset of keyword paraphrases.
  for (const auto& [from, to] : KeywordSynonymTable()) {
    if (rng.Bernoulli(0.4)) {
      out = ReplaceWordOutsideQuotes(out, from, to);
    }
  }
  // Occasionally wrap in a conversational carrier.
  if (rng.Bernoulli(0.3)) {
    std::string carrier = kCarrierPrefixes[rng.Index(std::size(kCarrierPrefixes))];
    if (!out.empty()) {
      out[0] = static_cast<char>(std::tolower(static_cast<unsigned char>(out[0])));
    }
    out = carrier + out;
  }
  return out;
}

std::vector<Text2SqlSample> AugmentQuestionToSql(
    const sql::Database& db, const std::vector<Text2SqlSample>& seeds,
    int count, Rng& rng) {
  CODES_CHECK(!seeds.empty());
  const TemplateLibrary& lib = GlobalTemplates();

  // The seeds reveal which intents real users have: collect their
  // templates (the paper's two-stage GPT-3.5 prompting generates questions
  // "drawing inspiration from the real questions", then produces SQL; we
  // re-instantiate the same intents with fresh slots).
  std::vector<int> seed_templates;
  for (const auto& seed : seeds) {
    int tid = lib.IdentifyTemplate(seed.sql);
    if (tid >= 0) seed_templates.push_back(tid);
  }
  CODES_CHECK(!seed_templates.empty());

  std::vector<Text2SqlSample> out;
  int attempts = 0;
  while (static_cast<int>(out.size()) < count && attempts < count * 12) {
    ++attempts;
    int tid = seed_templates[rng.Index(seed_templates.size())];
    auto inst = lib.Instantiate(tid, db, rng);
    if (!inst.has_value()) continue;
    if (!sql::IsExecutable(db, inst->sql_text)) continue;
    Text2SqlSample sample = SampleFromInstance(*inst, 0);
    // "High temperature" diversity: paraphrase most generated questions.
    sample.question = ParaphraseQuestion(sample.question, rng);
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<Text2SqlSample> AugmentSqlToQuestion(const sql::Database& db,
                                                 int count, Rng& rng) {
  const TemplateLibrary& lib = GlobalTemplates();
  std::vector<Text2SqlSample> out;
  int attempts = 0;
  while (static_cast<int>(out.size()) < count && attempts < count * 12) {
    ++attempts;
    // Uniform coverage over the template library keeps the augmented set
    // *general* (the paper's argument for the SQL-to-question direction).
    int tid = static_cast<int>(rng.Index(static_cast<size_t>(lib.size())));
    auto inst = lib.Instantiate(tid, db, rng);
    if (!inst.has_value()) continue;
    if (!sql::IsExecutable(db, inst->sql_text)) continue;
    Text2SqlSample sample = SampleFromInstance(*inst, 0);
    // Refinement step: the templated question is rephrased so it stops
    // sounding mechanical (Figure 5(b)'s [REFINED QUESTION]).
    sample.question = ParaphraseQuestion(sample.question, rng);
    out.push_back(std::move(sample));
  }
  return out;
}

NewDomainDataset BuildNewDomainDataset(const DomainSpec& domain,
                                       int test_size,
                                       const AugmentOptions& options) {
  NewDomainDataset dataset;
  Rng rng(options.seed);

  // The new-domain database: wide-but-clean profile; real deployments have
  // full column names but plenty of columns (Figure 2's 65-column table).
  DbProfile profile = DbProfile::Spider();
  profile.min_rows = 80;
  profile.max_rows = 200;
  Rng db_rng = rng.Fork();
  dataset.bench.name = domain.name;
  dataset.bench.databases.push_back(GenerateDatabase(domain, profile, db_rng));
  dataset.bench.domain_names.push_back(domain.name);
  dataset.bench.profile = profile;
  const sql::Database& db = dataset.bench.databases[0];

  const TemplateLibrary& lib = GlobalTemplates();

  // Seed pairs: "a few genuine user questions" with hand-written SQL.
  // Real users phrase questions conversationally, hence the paraphrase.
  Rng seed_rng = rng.Fork();
  while (static_cast<int>(dataset.seeds.size()) < options.seed_pairs) {
    auto inst = lib.InstantiateRandom(db, seed_rng);
    if (!inst.has_value()) break;
    if (!sql::IsExecutable(db, inst->sql_text)) continue;
    Text2SqlSample sample = SampleFromInstance(*inst, 0);
    sample.question = ParaphraseQuestion(sample.question, seed_rng);
    dataset.seeds.push_back(std::move(sample));
  }

  // Test set: held-out user-style questions (the paper's 91/97 manually
  // annotated evaluation questions).
  Rng test_rng = rng.Fork();
  while (static_cast<int>(dataset.bench.dev.size()) < test_size) {
    auto inst = lib.InstantiateRandom(db, test_rng);
    if (!inst.has_value()) break;
    if (!sql::IsExecutable(db, inst->sql_text)) continue;
    Text2SqlSample sample = SampleFromInstance(*inst, 0);
    sample.question = ParaphraseQuestion(sample.question, test_rng);
    dataset.bench.dev.push_back(std::move(sample));
  }

  // Bi-directional augmentation fills the training set.
  Rng aug_rng = rng.Fork();
  auto q2s = AugmentQuestionToSql(db, dataset.seeds,
                                  options.question_to_sql_pairs, aug_rng);
  auto s2q =
      AugmentSqlToQuestion(db, options.sql_to_question_pairs, aug_rng);
  dataset.bench.train = std::move(q2s);
  dataset.bench.train.insert(dataset.bench.train.end(),
                             std::make_move_iterator(s2q.begin()),
                             std::make_move_iterator(s2q.end()));
  return dataset;
}

}  // namespace codes
