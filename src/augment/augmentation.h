#ifndef CODES_AUGMENT_AUGMENTATION_H_
#define CODES_AUGMENT_AUGMENTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/domains.h"
#include "dataset/sample.h"

namespace codes {

/// Parameters of the bi-directional data augmentation of Section 7.
struct AugmentOptions {
  /// "A few genuine user questions" annotated by hand: the seed pairs.
  int seed_pairs = 30;
  /// Question-to-SQL direction: new pairs expanded from the seeds (the
  /// paper uses GPT-3.5; we use template re-instantiation biased toward
  /// the seeds' templates plus rule-based paraphrasing).
  int question_to_sql_pairs = 300;
  /// SQL-to-question direction: pairs instantiated from the 75-template
  /// library and refined by the paraphraser.
  int sql_to_question_pairs = 300;
  uint64_t seed = 2024;
};

/// A new-domain deployment dataset (Bank-Financials / Aminer-Simplified in
/// the paper): one database, a handful of seed pairs, a "real user" test
/// set, and the augmented training set.
struct NewDomainDataset {
  /// bench.databases[0] is the domain database; bench.train holds the
  /// augmented pairs; bench.dev holds the user-style test questions.
  Text2SqlBenchmark bench;
  std::vector<Text2SqlSample> seeds;
};

/// Rule-based paraphraser standing in for the GPT-3.5 refinement calls:
/// applies keyword synonyms and carrier phrases stochastically so
/// questions stop sounding templated.
std::string ParaphraseQuestion(const std::string& question, Rng& rng);

/// Question-to-SQL augmentation: expands `seeds` into `count` new pairs on
/// `db`, biased toward the seed questions' intents (their templates).
std::vector<Text2SqlSample> AugmentQuestionToSql(
    const sql::Database& db, const std::vector<Text2SqlSample>& seeds,
    int count, Rng& rng);

/// SQL-to-question augmentation: instantiates the template library across
/// `db` and refines the questions.
std::vector<Text2SqlSample> AugmentSqlToQuestion(const sql::Database& db,
                                                 int count, Rng& rng);

/// Builds a complete new-domain dataset for `domain` (database, seeds,
/// augmented train set, user-style test set). `test_size` mirrors the
/// paper's 91/97-question test sets.
NewDomainDataset BuildNewDomainDataset(const DomainSpec& domain,
                                       int test_size,
                                       const AugmentOptions& options);

}  // namespace codes

#endif  // CODES_AUGMENT_AUGMENTATION_H_
