#include "prompt/prompt_builder.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"
#include "common/trace.h"

namespace codes {

int CountPromptTokens(const std::string& text) {
  return static_cast<int>(SplitWhitespace(text).size());
}

bool DatabasePrompt::TableKept(int table) const {
  return std::find(kept_tables.begin(), kept_tables.end(), table) !=
         kept_tables.end();
}

bool DatabasePrompt::ColumnKept(int table, int column) const {
  for (size_t i = 0; i < kept_tables.size(); ++i) {
    if (kept_tables[i] == table) {
      return std::find(kept_columns[i].begin(), kept_columns[i].end(),
                       column) != kept_columns[i].end();
    }
  }
  return false;
}

namespace {

/// True for columns that must ride along for join correctness (PK/FK).
bool IsKeyColumn(const sql::Database& db, int table, int column) {
  const auto& col = db.schema().tables[table].columns[column];
  if (col.is_primary_key) return true;
  const std::string& table_name = db.schema().tables[table].name;
  for (const auto& fk : db.schema().foreign_keys) {
    if (ToLower(fk.table) == ToLower(table_name) &&
        ToLower(fk.column) == ToLower(col.name)) {
      return true;
    }
    if (ToLower(fk.ref_table) == ToLower(table_name) &&
        ToLower(fk.ref_column) == ToLower(col.name)) {
      return true;
    }
  }
  return false;
}

}  // namespace

DatabasePrompt PromptBuilder::Build(
    const sql::Database& db, const std::string& question,
    const ValueRetriever* value_retriever) const {
  const auto& schema = db.schema();
  std::vector<int> kept_tables;
  std::vector<std::vector<int>> kept_columns;

  if (options_.use_schema_filter && classifier_ != nullptr) {
    // Stage span: schema filtering — classifier scoring + top-k1/k2
    // selection (the "schema item classifier" column of the paper's
    // latency breakdown).
    CODES_TRACE_SPAN(span, "pipeline.classifier");
    // Score and keep top-k1 tables.
    std::vector<std::pair<double, int>> table_scores;
    for (size_t t = 0; t < schema.tables.size(); ++t) {
      table_scores.emplace_back(
          classifier_->ScoreTable(question, db, static_cast<int>(t)),
          static_cast<int>(t));
    }
    std::sort(table_scores.begin(), table_scores.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    int keep_t = std::min<int>(options_.top_k1,
                               static_cast<int>(table_scores.size()));
    for (int i = 0; i < keep_t; ++i) {
      kept_tables.push_back(table_scores[i].second);
    }
    std::sort(kept_tables.begin(), kept_tables.end());

    // Per kept table: the top-k2 scored columns, plus PK/FK columns which
    // always ride along (they are cheap to serialize and joins are
    // impossible without them).
    for (int t : kept_tables) {
      const auto& table = schema.tables[t];
      std::vector<int> cols;
      std::vector<std::pair<double, int>> scored;
      for (size_t c = 0; c < table.columns.size(); ++c) {
        if (IsKeyColumn(db, t, static_cast<int>(c))) {
          cols.push_back(static_cast<int>(c));
        } else {
          scored.emplace_back(classifier_->ScoreColumn(question, db, t,
                                                       static_cast<int>(c)),
                              static_cast<int>(c));
        }
      }
      std::sort(scored.begin(), scored.end(), [](const auto& a,
                                                 const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
      });
      int kept_scored = 0;
      for (const auto& [score, c] : scored) {
        if (kept_scored >= options_.top_k2) break;
        cols.push_back(c);
        ++kept_scored;
      }
      std::sort(cols.begin(), cols.end());
      kept_columns.push_back(std::move(cols));
    }
  } else {
    for (size_t t = 0; t < schema.tables.size(); ++t) {
      kept_tables.push_back(static_cast<int>(t));
      std::vector<int> cols;
      for (size_t c = 0; c < schema.tables[t].columns.size(); ++c) {
        cols.push_back(static_cast<int>(c));
      }
      kept_columns.push_back(std::move(cols));
    }
  }
  return Serialize(db, question, std::move(kept_tables),
                   std::move(kept_columns), value_retriever);
}

DatabasePrompt PromptBuilder::BuildForTraining(
    const sql::Database& db, const std::string& question,
    const std::vector<UsedSchemaItem>& used,
    const ValueRetriever* value_retriever, Rng& rng) const {
  const auto& schema = db.schema();
  if (!options_.use_schema_filter) {
    return Build(db, question, value_retriever);
  }

  // Used tables/columns resolved to indexes.
  std::vector<int> used_tables;
  std::unordered_set<int64_t> used_cols;
  for (const auto& item : used) {
    auto t = schema.FindTable(item.table);
    if (!t) continue;
    if (std::find(used_tables.begin(), used_tables.end(), *t) ==
        used_tables.end()) {
      used_tables.push_back(*t);
    }
    if (!item.column.empty()) {
      auto c = schema.tables[*t].FindColumn(item.column);
      if (c) used_cols.insert((static_cast<int64_t>(*t) << 32) | *c);
    }
  }

  // Pad with random unused tables up to top_k1.
  std::vector<int> kept_tables = used_tables;
  std::vector<int> unused;
  for (size_t t = 0; t < schema.tables.size(); ++t) {
    if (std::find(kept_tables.begin(), kept_tables.end(),
                  static_cast<int>(t)) == kept_tables.end()) {
      unused.push_back(static_cast<int>(t));
    }
  }
  rng.Shuffle(unused);
  for (int t : unused) {
    if (static_cast<int>(kept_tables.size()) >= options_.top_k1) break;
    kept_tables.push_back(t);
  }
  std::sort(kept_tables.begin(), kept_tables.end());

  std::vector<std::vector<int>> kept_columns;
  for (int t : kept_tables) {
    const auto& table = schema.tables[t];
    std::vector<int> cols;
    std::vector<int> pad_candidates;
    for (size_t c = 0; c < table.columns.size(); ++c) {
      int64_t key = (static_cast<int64_t>(t) << 32) | static_cast<int64_t>(c);
      if (used_cols.count(key) || IsKeyColumn(db, t, static_cast<int>(c))) {
        cols.push_back(static_cast<int>(c));
      } else {
        pad_candidates.push_back(static_cast<int>(c));
      }
    }
    rng.Shuffle(pad_candidates);
    int non_key = 0;
    for (int c : cols) {
      if (!IsKeyColumn(db, t, c)) ++non_key;
    }
    for (int c : pad_candidates) {
      if (non_key >= options_.top_k2) break;
      cols.push_back(c);
      ++non_key;
    }
    std::sort(cols.begin(), cols.end());
    kept_columns.push_back(std::move(cols));
  }
  return Serialize(db, question, std::move(kept_tables),
                   std::move(kept_columns), value_retriever);
}

DatabasePrompt PromptBuilder::Serialize(
    const sql::Database& db, const std::string& question,
    std::vector<int> kept_tables, std::vector<std::vector<int>> kept_columns,
    const ValueRetriever* value_retriever) const {
  const auto& schema = db.schema();
  DatabasePrompt prompt;
  prompt.comments_included = options_.include_comments;
  prompt.types_included = options_.include_column_types;
  prompt.representative_values_included =
      options_.include_representative_values;
  prompt.keys_included = options_.include_keys;
  prompt.representative_value_count = options_.representative_values;

  // Retrieve question-matched values first; they are serialized at the end
  // but are part of the token budget. Stage span: "value retrieval" in
  // the per-stage latency breakdown (BM25 coarse lookup + LCS fine rank
  // nest inside it).
  if (options_.use_value_retriever && value_retriever != nullptr) {
    CODES_TRACE_SPAN(span, "pipeline.value_retrieval");
    prompt.matched_values = value_retriever->Retrieve(
        question, options_.value_coarse_k, options_.value_fine_k);
  }

  // Serialize table blocks under the token budget; tables or columns that
  // do not fit are dropped from the kept sets (truncation). Stage span:
  // prompt text construction proper (schema rendering + budgeting).
  CODES_TRACE_SPAN(serialize_span, "pipeline.prompt_serialize");
  std::string text = "database " + schema.name + "\n";
  int budget = options_.max_prompt_tokens;
  budget -= CountPromptTokens(text) + CountPromptTokens(question);

  std::vector<int> final_tables;
  std::vector<std::vector<int>> final_columns;
  for (size_t i = 0; i < kept_tables.size(); ++i) {
    int t = kept_tables[i];
    const auto& table = schema.tables[t];
    std::string block = "table " + table.name;
    if (options_.include_comments && !table.comment.empty()) {
      block += " -- " + table.comment;
    }
    block += " , columns = [\n";
    std::vector<int> cols_that_fit;
    for (int c : kept_columns[i]) {
      const auto& col = table.columns[c];
      std::string line = "  " + table.name + "." + col.name;
      std::vector<std::string> attrs;
      if (options_.include_column_types) {
        attrs.push_back(sql::DataTypeName(col.type));
      }
      if (col.is_primary_key && options_.include_keys) {
        attrs.push_back("primary key");
      }
      if (options_.include_comments && !col.comment.empty()) {
        attrs.push_back("comment : " + col.comment);
      }
      if (options_.include_representative_values) {
        auto values = db.DistinctValues(
            table.name, col.name,
            static_cast<size_t>(options_.representative_values));
        if (!values.empty()) {
          std::string value_list = "values : ";
          for (size_t v = 0; v < values.size(); ++v) {
            if (v > 0) value_list += " , ";
            value_list += values[v].ToSqlLiteral();
          }
          attrs.push_back(std::move(value_list));
        }
      }
      if (!attrs.empty()) {
        line += " ( " + Join(attrs, " | ") + " )";
      }
      line += "\n";
      int line_tokens = CountPromptTokens(line);
      if (line_tokens > budget) break;  // truncate within the table
      budget -= line_tokens;
      block += line;
      cols_that_fit.push_back(c);
    }
    block += "]\n";
    int overhead = CountPromptTokens("table , columns = [ ]") + 2;
    if (cols_that_fit.empty() || overhead > budget) break;  // table dropped
    budget -= overhead;
    text += block;
    final_tables.push_back(t);
    final_columns.push_back(std::move(cols_that_fit));
  }

  // Foreign keys between kept tables.
  if (options_.include_keys) {
    std::string fk_text;
    for (const auto& fk : schema.foreign_keys) {
      auto t1 = schema.FindTable(fk.table);
      auto t2 = schema.FindTable(fk.ref_table);
      if (!t1 || !t2) continue;
      bool both_kept =
          std::find(final_tables.begin(), final_tables.end(), *t1) !=
              final_tables.end() &&
          std::find(final_tables.begin(), final_tables.end(), *t2) !=
              final_tables.end();
      if (!both_kept) continue;
      fk_text += "foreign key : " + fk.table + "." + fk.column + " = " +
                 fk.ref_table + "." + fk.ref_column + "\n";
    }
    if (!fk_text.empty() && CountPromptTokens(fk_text) <= budget) {
      budget -= CountPromptTokens(fk_text);
      text += fk_text;
    }
  }

  // Question-matched values.
  if (!prompt.matched_values.empty()) {
    std::string value_text;
    for (const auto& v : prompt.matched_values) {
      const auto& table = schema.tables[v.table];
      value_text += "matched value : " + table.name + "." +
                    table.columns[v.column].name + " = '" + v.text + "'\n";
    }
    if (CountPromptTokens(value_text) <= budget) {
      budget -= CountPromptTokens(value_text);
      text += value_text;
    } else {
      prompt.matched_values.clear();
    }
  }

  prompt.text = std::move(text);
  prompt.kept_tables = std::move(final_tables);
  prompt.kept_columns = std::move(final_columns);
  prompt.token_count = CountPromptTokens(prompt.text);
  return prompt;
}

}  // namespace codes
