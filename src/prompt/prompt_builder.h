#ifndef CODES_PROMPT_PROMPT_BUILDER_H_
#define CODES_PROMPT_PROMPT_BUILDER_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "dataset/sample.h"
#include "linker/schema_classifier.h"
#include "retrieval/value_retriever.h"
#include "sqlengine/database.h"

namespace codes {

/// Knobs of the database prompt (Section 6 / Algorithm 1). Each boolean
/// corresponds to one row of the Table 9 ablation.
struct PromptOptions {
  bool use_schema_filter = true;
  int top_k1 = 6;   ///< max tables kept
  int top_k2 = 10;  ///< max columns kept per table
  bool use_value_retriever = true;
  int value_coarse_k = 200;
  int value_fine_k = 6;
  bool include_column_types = true;
  bool include_comments = true;
  bool include_representative_values = true;
  int representative_values = 2;
  bool include_keys = true;  ///< primary/foreign keys
  /// Serialized prompts beyond this many tokens are truncated; schema
  /// items that fall past the boundary are unavailable to the generator
  /// (max context length of Table 1).
  int max_prompt_tokens = 8192;
};

/// The structured result of prompt construction. Besides the serialized
/// text, it records *which* schema items survived filtering/truncation and
/// which values were matched — the generator can only use what is here,
/// which is precisely how prompt quality gates accuracy.
struct DatabasePrompt {
  std::string text;
  /// Tables kept (schema indexes) and, per kept table, kept column indexes.
  std::vector<int> kept_tables;
  std::vector<std::vector<int>> kept_columns;  // parallel to kept_tables
  std::vector<RetrievedValue> matched_values;
  int token_count = 0;
  /// Which metadata sections were serialized; the generator may only use
  /// information whose section is present.
  bool comments_included = true;
  bool types_included = true;
  bool representative_values_included = true;
  bool keys_included = true;
  int representative_value_count = 2;

  bool TableKept(int table) const;
  bool ColumnKept(int table, int column) const;
};

/// Builds database prompts. A classifier is required only when
/// `use_schema_filter` is on; a value retriever only when
/// `use_value_retriever` is on.
class PromptBuilder {
 public:
  PromptBuilder(const SchemaItemClassifier* classifier,
                const PromptOptions& options)
      : classifier_(classifier), options_(options) {}

  /// Inference-time construction (Algorithm 1): scores schema items with
  /// the classifier, keeps top-k1/k2, retrieves matched values, and
  /// serializes with metadata.
  DatabasePrompt Build(const sql::Database& db, const std::string& question,
                       const ValueRetriever* value_retriever) const;

  /// Training-time construction: the gold SQL's schema items are known, so
  /// they are kept outright and padded with random unused tables/columns
  /// up to top-k1/k2, matching the paper's train/test distribution
  /// alignment.
  DatabasePrompt BuildForTraining(const sql::Database& db,
                                  const std::string& question,
                                  const std::vector<UsedSchemaItem>& used,
                                  const ValueRetriever* value_retriever,
                                  Rng& rng) const;

  const PromptOptions& options() const { return options_; }

 private:
  DatabasePrompt Serialize(const sql::Database& db,
                           const std::string& question,
                           std::vector<int> kept_tables,
                           std::vector<std::vector<int>> kept_columns,
                           const ValueRetriever* value_retriever) const;

  const SchemaItemClassifier* classifier_;
  PromptOptions options_;
};

/// Counts whitespace-delimited tokens; the prompt length unit.
int CountPromptTokens(const std::string& text);

}  // namespace codes

#endif  // CODES_PROMPT_PROMPT_BUILDER_H_
