#include "fuzz/query_gen.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "common/status.h"

namespace codes::fuzz {

using sql::BinaryOp;
using sql::DataType;
using sql::Expr;
using sql::ExprKind;
using sql::SelectStatement;
using sql::UnaryOp;
using sql::Value;

namespace {

bool IsNumeric(DataType type) {
  return type == DataType::kInteger || type == DataType::kReal;
}

/// Quantizes a value through its own SQL spelling so that a literal built
/// from it survives serialize -> lex -> strtod bit-exactly (the engine
/// prints reals with %.6g, which drops precision past six significant
/// digits).
Value Quantize(const Value& v) {
  if (!v.is_real()) return v;
  std::string text = v.ToSqlLiteral();
  double d = std::strtod(text.c_str(), nullptr);
  if (d == 0.0) d = 0.0;  // normalize -0.0, whose sign survives printing
  return Value(d);
}

/// Builds a literal expression shaped the way the parser would shape it:
/// negative numbers become unary minus over a positive literal, because
/// that is what "-5" re-parses to (a bare negative kLiteral would break
/// the round-trip oracle's structural fingerprint comparison).
std::unique_ptr<Expr> MakeLiteralExpr(Value v) {
  bool negative = (v.is_integer() && v.AsInteger() < 0) ||
                  (v.is_real() && v.AsReal() < 0.0);
  if (!negative) return Expr::MakeLiteral(std::move(v));
  Value positive =
      v.is_integer() ? Value(-v.AsInteger()) : Value(-v.AsReal());
  return Expr::MakeUnary(UnaryOp::kNegate,
                         Expr::MakeLiteral(std::move(positive)));
}

std::string AliasFor(size_t index) { return "T" + std::to_string(index + 1); }

}  // namespace

QueryGenerator::QueryGenerator(const sql::Database& db, GenOptions options)
    : db_(db), options_(options) {
  const auto& tables = db_.schema().tables;
  literal_pool_.resize(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    literal_pool_[t].resize(tables[t].columns.size());
    for (size_t c = 0; c < tables[t].columns.size(); ++c) {
      auto values = db_.DistinctValues(tables[t].name, tables[t].columns[c].name,
                                       options_.max_literals_per_column);
      for (auto& v : values) v = Quantize(v);
      literal_pool_[t][c] = std::move(values);
    }
  }
}

void QueryGenerator::AppendTableColumns(
    const std::string& qualifier, int table_index,
    std::vector<BoundColumn>* scope) const {
  const auto& table = db_.schema().tables[table_index];
  for (size_t c = 0; c < table.columns.size(); ++c) {
    BoundColumn col;
    col.qualifier = qualifier;
    col.table = table.name;
    col.def = &table.columns[c];
    col.table_index = table_index;
    col.column_index = static_cast<int>(c);
    scope->push_back(std::move(col));
  }
}

std::vector<QueryGenerator::BoundColumn> QueryGenerator::ScopeOf(
    const SelectStatement& stmt) const {
  std::vector<BoundColumn> scope;
  auto add = [&](const sql::TableRef& ref) {
    auto idx = db_.schema().FindTable(ref.table);
    if (idx.has_value()) AppendTableColumns(ref.BindingName(), *idx, &scope);
  };
  add(stmt.from);
  for (const auto& join : stmt.joins) add(join.table);
  return scope;
}

const QueryGenerator::BoundColumn& QueryGenerator::PickColumn(
    const std::vector<BoundColumn>& scope, Rng& rng) const {
  return scope[rng.Index(scope.size())];
}

const QueryGenerator::BoundColumn* QueryGenerator::PickTypedColumn(
    const std::vector<BoundColumn>& scope, bool numeric, Rng& rng) const {
  std::vector<const BoundColumn*> matches;
  for (const auto& col : scope) {
    if (IsNumeric(col.def->type) == numeric) matches.push_back(&col);
  }
  if (matches.empty()) return nullptr;
  return matches[rng.Index(matches.size())];
}

Value QueryGenerator::PoolValue(const BoundColumn& col, Rng& rng) const {
  const auto& pool = literal_pool_[col.table_index][col.column_index];
  if (!pool.empty() && !rng.Bernoulli(0.2)) return rng.Pick(pool);
  // Synthesized fallback keeps predicates interesting even for columns
  // whose pool is empty (e.g. an all-NULL column).
  switch (col.def->type) {
    case DataType::kInteger:
      return Value(rng.UniformInt(-5, 50));
    case DataType::kReal:
      return Quantize(Value(rng.UniformDouble(-10.0, 100.0)));
    case DataType::kText:
      return Value(std::string(1, static_cast<char>('a' + rng.Index(26))));
  }
  return Value();
}

std::unique_ptr<Expr> QueryGenerator::LiteralFor(const BoundColumn& col,
                                                 Rng& rng) const {
  if (rng.Bernoulli(options_.null_literal_probability)) {
    return Expr::MakeLiteral(Value());
  }
  return MakeLiteralExpr(PoolValue(col, rng));
}

std::unique_ptr<SelectStatement> QueryGenerator::SubquerySelect(
    DataType type, bool scalar, Rng& rng) const {
  const auto& tables = db_.schema().tables;
  // Find a table owning a column of the requested type; the catalog always
  // has integer primary keys, so an integer request cannot fail.
  std::vector<std::pair<int, int>> candidates;
  for (size_t t = 0; t < tables.size(); ++t) {
    for (size_t c = 0; c < tables[t].columns.size(); ++c) {
      if (tables[t].columns[c].type == type) {
        candidates.emplace_back(static_cast<int>(t), static_cast<int>(c));
      }
    }
  }
  if (candidates.empty()) return nullptr;
  auto [t, c] = candidates[rng.Index(candidates.size())];

  auto stmt = std::make_unique<SelectStatement>();
  stmt->from.table = tables[t].name;

  std::vector<BoundColumn> scope;
  AppendTableColumns(tables[t].name, t, &scope);
  const BoundColumn& target = scope[static_cast<size_t>(c)];

  auto col_expr = Expr::MakeColumn(target.qualifier, target.def->name);
  sql::SelectItem item;
  if (scalar) {
    // A scalar subquery must yield exactly one value; aggregating
    // guarantees that regardless of the table contents.
    std::vector<std::unique_ptr<Expr>> args;
    args.push_back(std::move(col_expr));
    const char* fn = IsNumeric(type) ? (rng.Bernoulli(0.5) ? "MAX" : "MIN")
                                     : "MIN";
    item.expr = Expr::MakeFunction(fn, std::move(args));
  } else {
    item.expr = std::move(col_expr);
  }
  stmt->select_list.push_back(std::move(item));

  if (rng.Bernoulli(0.5)) {
    stmt->where = LeafPredicate(scope, rng);
  }
  return stmt;
}

std::unique_ptr<Expr> QueryGenerator::ScalarExpr(
    const std::vector<BoundColumn>& scope, int depth, Rng& rng) const {
  const BoundColumn& col = PickColumn(scope, rng);
  if (depth <= 0 || rng.Bernoulli(0.55)) {
    return Expr::MakeColumn(col.qualifier, col.def->name);
  }
  switch (rng.Index(6)) {
    case 0: {  // arithmetic on a numeric column
      const BoundColumn* num = PickTypedColumn(scope, /*numeric=*/true, rng);
      if (num == nullptr) break;
      static constexpr BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                          BinaryOp::kMul, BinaryOp::kDiv};
      BinaryOp op = kOps[rng.Index(4)];
      auto lhs = Expr::MakeColumn(num->qualifier, num->def->name);
      auto rhs = rng.Bernoulli(0.5)
                     ? ScalarExpr(scope, depth - 1, rng)
                     : Expr::MakeLiteral(Value(rng.UniformInt(1, 9)));
      return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    case 1: {  // unary minus
      const BoundColumn* num = PickTypedColumn(scope, /*numeric=*/true, rng);
      if (num == nullptr) break;
      return Expr::MakeUnary(UnaryOp::kNegate,
                             Expr::MakeColumn(num->qualifier, num->def->name));
    }
    case 2: {  // numeric scalar function
      const BoundColumn* num = PickTypedColumn(scope, /*numeric=*/true, rng);
      if (num == nullptr) break;
      std::vector<std::unique_ptr<Expr>> args;
      args.push_back(Expr::MakeColumn(num->qualifier, num->def->name));
      if (rng.Bernoulli(0.5)) {
        args.push_back(Expr::MakeLiteral(Value(rng.UniformInt(0, 2))));
        return Expr::MakeFunction("ROUND", std::move(args));
      }
      return Expr::MakeFunction("ABS", std::move(args));
    }
    case 3: {  // text scalar function
      const BoundColumn* text = PickTypedColumn(scope, /*numeric=*/false, rng);
      if (text == nullptr) break;
      std::vector<std::unique_ptr<Expr>> args;
      args.push_back(Expr::MakeColumn(text->qualifier, text->def->name));
      static constexpr const char* kFns[] = {"LENGTH", "UPPER", "LOWER"};
      return Expr::MakeFunction(kFns[rng.Index(3)], std::move(args));
    }
    case 4: {  // CAST
      auto inner = Expr::MakeColumn(col.qualifier, col.def->name);
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      e->children.push_back(std::move(inner));
      static constexpr DataType kTypes[] = {DataType::kInteger, DataType::kReal,
                                            DataType::kText};
      e->cast_type = kTypes[rng.Index(3)];
      return e;
    }
    case 5: {  // concatenation
      const BoundColumn* text = PickTypedColumn(scope, /*numeric=*/false, rng);
      if (text == nullptr) break;
      auto lhs = Expr::MakeColumn(text->qualifier, text->def->name);
      auto rhs = Expr::MakeLiteral(Value(std::string("_") +
                                         static_cast<char>('a' + rng.Index(26))));
      return Expr::MakeBinary(BinaryOp::kConcat, std::move(lhs),
                              std::move(rhs));
    }
  }
  return Expr::MakeColumn(col.qualifier, col.def->name);
}

std::unique_ptr<Expr> QueryGenerator::LeafPredicate(
    const std::vector<BoundColumn>& scope, Rng& rng) const {
  const BoundColumn& col = PickColumn(scope, rng);
  switch (rng.Index(7)) {
    case 0: {  // IS [NOT] NULL
      auto ref = Expr::MakeColumn(col.qualifier, col.def->name);
      UnaryOp op = rng.Bernoulli(0.5) ? UnaryOp::kIsNull : UnaryOp::kIsNotNull;
      return Expr::MakeUnary(op, std::move(ref));
    }
    case 1: {  // BETWEEN over a numeric column
      const BoundColumn* num = PickTypedColumn(scope, /*numeric=*/true, rng);
      if (num == nullptr) break;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = rng.Bernoulli(0.25);
      e->children.push_back(Expr::MakeColumn(num->qualifier, num->def->name));
      e->children.push_back(LiteralFor(*num, rng));
      e->children.push_back(LiteralFor(*num, rng));
      return e;
    }
    case 2: {  // IN (literal list), NULL member sometimes
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = rng.Bernoulli(0.3);
      e->children.push_back(Expr::MakeColumn(col.qualifier, col.def->name));
      int n = static_cast<int>(rng.UniformInt(1, options_.max_in_list));
      for (int i = 0; i < n; ++i) e->in_list.push_back(PoolValue(col, rng));
      if (rng.Bernoulli(0.25)) e->in_list.push_back(Value());
      return e;
    }
    case 3: {  // [NOT] LIKE on a text column
      const BoundColumn* text = PickTypedColumn(scope, /*numeric=*/false, rng);
      if (text == nullptr) break;
      Value sample = PoolValue(*text, rng);
      std::string base = sample.is_text() ? sample.AsText() : "a";
      if (base.empty()) base = "a";
      std::string fragment = base.substr(0, rng.Index(base.size()) + 1);
      std::string pattern;
      switch (rng.Index(3)) {
        case 0: pattern = fragment + "%"; break;
        case 1: pattern = "%" + fragment + "%"; break;
        default: pattern = "%" + fragment; break;
      }
      BinaryOp op = rng.Bernoulli(0.25) ? BinaryOp::kNotLike : BinaryOp::kLike;
      return Expr::MakeBinary(op,
                              Expr::MakeColumn(text->qualifier, text->def->name),
                              Expr::MakeLiteral(Value(std::move(pattern))));
    }
    case 4: {  // [NOT] IN (SELECT ...)
      if (!rng.Bernoulli(options_.subquery_probability * 2)) break;
      auto sub = SubquerySelect(col.def->type, /*scalar=*/false, rng);
      if (sub == nullptr) break;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInSubquery;
      e->negated = rng.Bernoulli(0.3);
      e->children.push_back(Expr::MakeColumn(col.qualifier, col.def->name));
      e->subquery = std::move(sub);
      return e;
    }
    case 5: {  // comparison against a scalar subquery
      if (!rng.Bernoulli(options_.subquery_probability * 2)) break;
      const BoundColumn* num = PickTypedColumn(scope, /*numeric=*/true, rng);
      if (num == nullptr) break;
      auto sub = SubquerySelect(num->def->type, /*scalar=*/true, rng);
      if (sub == nullptr) break;
      auto rhs = std::make_unique<Expr>();
      rhs->kind = ExprKind::kScalarSubquery;
      rhs->subquery = std::move(sub);
      static constexpr BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kLt,
                                          BinaryOp::kGe};
      return Expr::MakeBinary(kOps[rng.Index(3)],
                              Expr::MakeColumn(num->qualifier, num->def->name),
                              std::move(rhs));
    }
    default:
      break;
  }
  // Plain comparison: column vs literal (common) or vs a same-class column.
  static constexpr BinaryOp kCmp[] = {BinaryOp::kEq, BinaryOp::kNe,
                                      BinaryOp::kLt, BinaryOp::kLe,
                                      BinaryOp::kGt, BinaryOp::kGe};
  BinaryOp op = kCmp[rng.Index(6)];
  auto lhs = Expr::MakeColumn(col.qualifier, col.def->name);
  std::unique_ptr<Expr> rhs;
  const BoundColumn* peer =
      PickTypedColumn(scope, IsNumeric(col.def->type), rng);
  if (peer != nullptr && rng.Bernoulli(0.25)) {
    rhs = Expr::MakeColumn(peer->qualifier, peer->def->name);
  } else {
    rhs = LiteralFor(col, rng);
  }
  return Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
}

std::unique_ptr<Expr> QueryGenerator::Predicate(
    const std::vector<BoundColumn>& scope, int depth, Rng& rng) const {
  if (depth <= 0 || rng.Bernoulli(0.45)) return LeafPredicate(scope, rng);
  switch (rng.Index(3)) {
    case 0:
      return Expr::MakeBinary(BinaryOp::kAnd, Predicate(scope, depth - 1, rng),
                              Predicate(scope, depth - 1, rng));
    case 1:
      return Expr::MakeBinary(BinaryOp::kOr, Predicate(scope, depth - 1, rng),
                              Predicate(scope, depth - 1, rng));
    default:
      return Expr::MakeUnary(UnaryOp::kNot, Predicate(scope, depth - 1, rng));
  }
}

std::unique_ptr<Expr> QueryGenerator::AggregateExpr(
    const std::vector<BoundColumn>& scope, Rng& rng) const {
  switch (rng.Index(5)) {
    case 0: {  // COUNT(*)
      std::vector<std::unique_ptr<Expr>> args;
      args.push_back(Expr::MakeStar());
      return Expr::MakeFunction("COUNT", std::move(args));
    }
    case 1: {  // COUNT([DISTINCT] col)
      const BoundColumn& col = PickColumn(scope, rng);
      std::vector<std::unique_ptr<Expr>> args;
      args.push_back(Expr::MakeColumn(col.qualifier, col.def->name));
      return Expr::MakeFunction("COUNT", std::move(args), rng.Bernoulli(0.3));
    }
    case 2:
    case 3: {  // SUM / AVG over a numeric column
      const BoundColumn* num = PickTypedColumn(scope, /*numeric=*/true, rng);
      if (num == nullptr) break;
      std::vector<std::unique_ptr<Expr>> args;
      args.push_back(Expr::MakeColumn(num->qualifier, num->def->name));
      return Expr::MakeFunction(rng.Bernoulli(0.5) ? "SUM" : "AVG",
                                std::move(args));
    }
    default: {  // MIN / MAX over any column
      const BoundColumn& col = PickColumn(scope, rng);
      std::vector<std::unique_ptr<Expr>> args;
      args.push_back(Expr::MakeColumn(col.qualifier, col.def->name));
      return Expr::MakeFunction(rng.Bernoulli(0.5) ? "MIN" : "MAX",
                                std::move(args));
    }
  }
  std::vector<std::unique_ptr<Expr>> args;
  args.push_back(Expr::MakeStar());
  return Expr::MakeFunction("COUNT", std::move(args));
}

std::unique_ptr<SelectStatement> QueryGenerator::Generate(Rng& rng) const {
  const auto& schema = db_.schema();
  auto stmt = std::make_unique<SelectStatement>();

  // FROM + JOIN chain. Joins follow schema foreign keys so the join graph
  // is always connected and every ON condition is a same-typed equality;
  // aliases T1..Tn keep column references unambiguous.
  size_t from_index = rng.Index(schema.tables.size());
  stmt->from.table = schema.tables[from_index].name;
  stmt->from.alias = AliasFor(0);
  std::vector<std::pair<int, std::string>> used;  // (table index, alias)
  used.emplace_back(static_cast<int>(from_index), stmt->from.alias);

  int join_budget = static_cast<int>(rng.UniformInt(0, options_.max_joins));
  for (int j = 0; j < join_budget; ++j) {
    if (!rng.Bernoulli(options_.join_probability)) break;
    // Candidate FK edges touching a used table on exactly one side.
    struct Edge {
      int new_table;
      std::string new_column;
      std::string used_alias;
      std::string used_column;
    };
    std::vector<Edge> edges;
    for (const auto& fk : schema.foreign_keys) {
      auto t1 = schema.FindTable(fk.table);
      auto t2 = schema.FindTable(fk.ref_table);
      if (!t1.has_value() || !t2.has_value()) continue;
      for (const auto& [used_table, used_alias] : used) {
        if (used_table == *t1) {
          edges.push_back(Edge{*t2, fk.ref_column, used_alias, fk.column});
        }
        if (used_table == *t2) {
          edges.push_back(Edge{*t1, fk.column, used_alias, fk.ref_column});
        }
      }
    }
    if (edges.empty()) break;
    const Edge& edge = edges[rng.Index(edges.size())];
    sql::JoinClause join;
    join.table.table = schema.tables[edge.new_table].name;
    join.table.alias = AliasFor(used.size());
    join.condition = Expr::MakeBinary(
        BinaryOp::kEq, Expr::MakeColumn(join.table.alias, edge.new_column),
        Expr::MakeColumn(edge.used_alias, edge.used_column));
    used.emplace_back(edge.new_table, join.table.alias);
    stmt->joins.push_back(std::move(join));
  }

  std::vector<BoundColumn> scope = ScopeOf(*stmt);

  const bool aggregate_mode = rng.Bernoulli(options_.aggregate_probability);
  if (aggregate_mode) {
    if (rng.Bernoulli(options_.group_by_probability)) {
      int keys = rng.Bernoulli(0.25) ? 2 : 1;
      for (int k = 0; k < keys; ++k) {
        const BoundColumn& col = PickColumn(scope, rng);
        stmt->group_by.push_back(
            Expr::MakeColumn(col.qualifier, col.def->name));
      }
      // Grouped select: the keys followed by one or two aggregates.
      for (const auto& key : stmt->group_by) {
        sql::SelectItem item;
        item.expr = key->Clone();
        stmt->select_list.push_back(std::move(item));
      }
      int aggs = rng.Bernoulli(0.3) ? 2 : 1;
      for (int a = 0; a < aggs; ++a) {
        sql::SelectItem item;
        item.expr = AggregateExpr(scope, rng);
        stmt->select_list.push_back(std::move(item));
      }
      if (rng.Bernoulli(options_.having_probability)) {
        static constexpr BinaryOp kCmp[] = {BinaryOp::kGt, BinaryOp::kGe,
                                            BinaryOp::kLt, BinaryOp::kEq};
        stmt->having = Expr::MakeBinary(
            kCmp[rng.Index(4)], AggregateExpr(scope, rng),
            Expr::MakeLiteral(Value(rng.UniformInt(0, 20))));
      }
    } else {
      // Global aggregation: aggregates only.
      int aggs = rng.Bernoulli(0.3) ? 2 : 1;
      for (int a = 0; a < aggs; ++a) {
        sql::SelectItem item;
        item.expr = AggregateExpr(scope, rng);
        stmt->select_list.push_back(std::move(item));
      }
    }
  } else {
    if (rng.Bernoulli(options_.star_probability)) {
      sql::SelectItem item;
      item.expr = Expr::MakeStar();
      if (!stmt->joins.empty() && rng.Bernoulli(0.5)) {
        // Qualified star: expand one table of the join.
        item.expr->table = used[rng.Index(used.size())].second;
      }
      stmt->select_list.push_back(std::move(item));
    } else {
      int items = static_cast<int>(
          rng.UniformInt(1, options_.max_select_items));
      for (int i = 0; i < items; ++i) {
        sql::SelectItem item;
        item.expr = ScalarExpr(scope, 2, rng);
        if (rng.Bernoulli(0.2)) item.alias = "c" + std::to_string(i + 1);
        stmt->select_list.push_back(std::move(item));
      }
    }
    stmt->distinct = rng.Bernoulli(options_.distinct_probability);
  }

  if (rng.Bernoulli(options_.where_probability)) {
    stmt->where = Predicate(scope, options_.max_predicate_depth, rng);
  }

  if (rng.Bernoulli(options_.order_by_probability)) {
    // Order keys are clones of select items so the sortedness oracle can
    // check them against the output columns; '*' select lists instead
    // order by a random scope column.
    int keys = rng.Bernoulli(0.25) ? 2 : 1;
    for (int k = 0; k < keys; ++k) {
      sql::OrderItem item;
      const auto& pick =
          stmt->select_list[rng.Index(stmt->select_list.size())];
      if (pick.expr->kind == ExprKind::kStar) {
        const BoundColumn& col = PickColumn(scope, rng);
        item.expr = Expr::MakeColumn(col.qualifier, col.def->name);
      } else {
        item.expr = pick.expr->Clone();
      }
      item.ascending = rng.Bernoulli(0.5);
      stmt->order_by.push_back(std::move(item));
    }
  }

  if (rng.Bernoulli(options_.limit_probability)) {
    stmt->limit = rng.UniformInt(0, 25);
  }

  // Set operation: both arms project plain columns so the arities match.
  if (!aggregate_mode && rng.Bernoulli(options_.set_op_probability)) {
    bool simple = true;
    for (const auto& item : stmt->select_list) {
      if (item.expr->kind == ExprKind::kStar) simple = false;
    }
    if (simple) {
      size_t rhs_table = rng.Index(schema.tables.size());
      const auto& table = schema.tables[rhs_table];
      if (table.columns.size() >= stmt->select_list.size()) {
        auto rhs = std::make_unique<SelectStatement>();
        rhs->from.table = table.name;
        rhs->from.alias = AliasFor(0);
        std::vector<BoundColumn> rhs_scope = ScopeOf(*rhs);
        for (size_t i = 0; i < stmt->select_list.size(); ++i) {
          sql::SelectItem item;
          size_t c = rng.Index(table.columns.size());
          item.expr = Expr::MakeColumn(rhs->from.alias, table.columns[c].name);
          rhs->select_list.push_back(std::move(item));
        }
        if (rng.Bernoulli(0.5)) rhs->where = LeafPredicate(rhs_scope, rng);
        static constexpr sql::SetOp kOps[] = {
            sql::SetOp::kUnion, sql::SetOp::kUnionAll, sql::SetOp::kIntersect,
            sql::SetOp::kExcept};
        stmt->set_op = kOps[rng.Index(4)];
        stmt->set_rhs = std::move(rhs);
      }
    }
  }

  return stmt;
}

std::unique_ptr<Expr> QueryGenerator::GeneratePredicateFor(
    const SelectStatement& stmt, Rng& rng) const {
  std::vector<BoundColumn> scope = ScopeOf(stmt);
  if (scope.empty()) {
    return Expr::MakeBinary(BinaryOp::kEq,
                            Expr::MakeLiteral(Value(static_cast<int64_t>(1))),
                            Expr::MakeLiteral(Value(static_cast<int64_t>(1))));
  }
  return LeafPredicate(scope, rng);
}

}  // namespace codes::fuzz
