#ifndef CODES_FUZZ_QUERY_GEN_H_
#define CODES_FUZZ_QUERY_GEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sqlengine/ast.h"
#include "sqlengine/database.h"

namespace codes::fuzz {

/// Knobs for the random query generator. Probabilities are independent
/// per-feature draws; the defaults aim for a mix where every executor
/// code path (joins, grouping, subqueries, set ops, NULL-heavy
/// predicates) appears in a few percent of queries.
struct GenOptions {
  int max_joins = 2;             ///< extra tables beyond FROM
  int max_predicate_depth = 3;   ///< AND/OR/NOT nesting budget
  double join_probability = 0.4;
  double where_probability = 0.75;
  double aggregate_probability = 0.3;
  double group_by_probability = 0.6;   ///< given aggregate mode
  double having_probability = 0.4;     ///< given GROUP BY
  double order_by_probability = 0.4;
  double limit_probability = 0.3;
  double distinct_probability = 0.12;
  double set_op_probability = 0.06;
  double subquery_probability = 0.12;  ///< IN (SELECT ...) / scalar leaves
  double null_literal_probability = 0.12;
  double star_probability = 0.12;      ///< '*' or 'T1.*' select list
  int max_select_items = 4;
  int max_in_list = 4;
  size_t max_literals_per_column = 8;  ///< distinct-value pool size
};

/// Catalog-driven random SELECT generator. Every query it produces
/// parses, round-trips through ToSql(), and executes without error on
/// the database it was built for; the stream of queries is a pure
/// function of the `Rng` passed to Generate (the generator itself holds
/// no mutable state).
///
/// Tables are aliased T1..Tn and every column reference is
/// alias-qualified, so generated text never depends on name-resolution
/// tie-breaking. Real-valued literals are quantized through
/// Value::ToSqlLiteral so that serialize -> parse preserves them
/// exactly.
class QueryGenerator {
 public:
  explicit QueryGenerator(const sql::Database& db,
                          GenOptions options = GenOptions());

  QueryGenerator(QueryGenerator&&) = default;

  /// Generates one random SELECT statement.
  std::unique_ptr<sql::SelectStatement> Generate(Rng& rng) const;

  /// Generates a simple row-local predicate over the tables referenced by
  /// `stmt` (used by the TLP oracle to partition a query's WHERE clause).
  /// The predicate is NULL-heavy by design: IS NULL tests, IN lists
  /// containing NULL, and comparisons against NULL literals are common.
  std::unique_ptr<sql::Expr> GeneratePredicateFor(
      const sql::SelectStatement& stmt, Rng& rng) const;

  const sql::Database& db() const { return db_; }
  const GenOptions& options() const { return options_; }

 private:
  /// A column visible in a statement scope under a binding qualifier.
  struct BoundColumn {
    std::string qualifier;  ///< alias ("T1") or table name
    std::string table;      ///< underlying table name
    const sql::ColumnDef* def = nullptr;
    int table_index = 0;
    int column_index = 0;
  };

  std::vector<BoundColumn> ScopeOf(const sql::SelectStatement& stmt) const;
  void AppendTableColumns(const std::string& qualifier, int table_index,
                          std::vector<BoundColumn>* scope) const;

  const BoundColumn& PickColumn(const std::vector<BoundColumn>& scope,
                                Rng& rng) const;
  const BoundColumn* PickTypedColumn(const std::vector<BoundColumn>& scope,
                                     bool numeric, Rng& rng) const;

  /// A literal drawn from the column's value pool (or NULL).
  std::unique_ptr<sql::Expr> LiteralFor(const BoundColumn& col,
                                        Rng& rng) const;
  sql::Value PoolValue(const BoundColumn& col, Rng& rng) const;

  std::unique_ptr<sql::Expr> ScalarExpr(const std::vector<BoundColumn>& scope,
                                        int depth, Rng& rng) const;
  std::unique_ptr<sql::Expr> Predicate(const std::vector<BoundColumn>& scope,
                                       int depth, Rng& rng) const;
  std::unique_ptr<sql::Expr> LeafPredicate(
      const std::vector<BoundColumn>& scope, Rng& rng) const;
  std::unique_ptr<sql::Expr> AggregateExpr(
      const std::vector<BoundColumn>& scope, Rng& rng) const;

  /// Uncorrelated single-column subquery over a random table.
  std::unique_ptr<sql::SelectStatement> SubquerySelect(sql::DataType type,
                                                       bool scalar,
                                                       Rng& rng) const;

  const sql::Database& db_;
  GenOptions options_;
  /// literal_pool_[t][c] = quantized distinct values of column c of table t.
  std::vector<std::vector<std::vector<sql::Value>>> literal_pool_;
};

}  // namespace codes::fuzz

#endif  // CODES_FUZZ_QUERY_GEN_H_
