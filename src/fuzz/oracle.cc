#include "fuzz/oracle.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "sqlengine/executor.h"
#include "sqlengine/fingerprint.h"
#include "sqlengine/parser.h"
#include "sqlengine/result_table.h"

namespace codes::fuzz {

using sql::BinaryOp;
using sql::Executor;
using sql::Expr;
using sql::ExprKind;
using sql::ResultTable;
using sql::SelectStatement;
using sql::UnaryOp;
using sql::Value;

const char* OracleName(OracleId id) {
  switch (id) {
    case OracleId::kExec: return "exec";
    case OracleId::kRoundTrip: return "roundtrip";
    case OracleId::kRerun: return "rerun";
    case OracleId::kTlp: return "tlp";
    case OracleId::kNoRec: return "norec";
    case OracleId::kOrderLimit: return "orderlimit";
    case OracleId::kStorageDiff: return "storagediff";
  }
  return "unknown";
}

namespace {

bool Truthy(const Value& v) { return !v.is_null() && v.ToNumeric() != 0.0; }

/// Exact (type- and bit-sensitive) value equality, stricter than the EX
/// metric's tolerant comparison: rerun and limit-prefix checks compare two
/// executions of the same engine, so any difference at all is a bug.
bool ValueExact(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_integer() && b.is_integer()) return a.AsInteger() == b.AsInteger();
  if (a.is_real() && b.is_real()) {
    // NaN is bitwise-identical across two runs of the same engine, so
    // treat NaN == NaN here; `==` alone would flag it as a difference.
    if (std::isnan(a.AsReal()) && std::isnan(b.AsReal())) return true;
    return a.AsReal() == b.AsReal();
  }
  if (a.is_text() && b.is_text()) return a.AsText() == b.AsText();
  return false;
}

bool TableExact(const ResultTable& a, const ResultTable& b) {
  if (a.NumColumns() != b.NumColumns() || a.NumRows() != b.NumRows()) {
    return false;
  }
  for (size_t r = 0; r < a.rows.size(); ++r) {
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!ValueExact(a.rows[r][c], b.rows[r][c])) return false;
    }
  }
  return true;
}

std::string Clip(const std::string& s) {
  constexpr size_t kMax = 200;
  if (s.size() <= kMax) return s;
  return s.substr(0, kMax) + "...";
}

std::unique_ptr<Expr> AndWith(std::unique_ptr<Expr> where,
                              std::unique_ptr<Expr> p) {
  if (!where) return p;
  return Expr::MakeBinary(BinaryOp::kAnd, std::move(where), std::move(p));
}

void CheckRerun(const Executor& exec, const SelectStatement& stmt,
                const ResultTable& base, std::vector<OracleViolation>* out) {
  auto again = exec.Execute(stmt);
  if (!again.ok()) {
    out->push_back({OracleId::kRerun,
                    "second execution failed: " + again.status().ToString()});
    return;
  }
  if (!TableExact(base, *again)) {
    out->push_back({OracleId::kRerun,
                    "second execution differs (" +
                        std::to_string(base.NumRows()) + " vs " +
                        std::to_string(again->NumRows()) + " rows)"});
  }
}

void CheckRoundTrip(const Executor& exec, const SelectStatement& stmt,
                    const ResultTable& base,
                    std::vector<OracleViolation>* out) {
  const std::string sql1 = stmt.ToSql();
  auto parsed = sql::ParseSql(sql1);
  if (!parsed.ok()) {
    out->push_back({OracleId::kRoundTrip,
                    "reparse failed: " + parsed.status().ToString() +
                        " sql=" + Clip(sql1)});
    return;
  }
  const SelectStatement& reparsed = **parsed;
  const std::string sql2 = reparsed.ToSql();
  if (sql2 != sql1) {
    out->push_back({OracleId::kRoundTrip,
                    "not a serialization fixpoint: " + Clip(sql1) + " -> " +
                        Clip(sql2)});
  }
  const std::string key1 = sql::FingerprintOf(stmt).ToKey();
  const std::string key2 = sql::FingerprintOf(reparsed).ToKey();
  if (key1 != key2) {
    out->push_back({OracleId::kRoundTrip,
                    "fingerprint changed: " + key1 + " -> " + key2 +
                        " sql=" + Clip(sql1)});
  }
  auto result = exec.Execute(reparsed);
  if (!result.ok()) {
    out->push_back({OracleId::kRoundTrip,
                    "reparsed execution failed: " +
                        result.status().ToString() + " sql=" + Clip(sql1)});
    return;
  }
  if (!sql::ResultsEquivalent(base, *result, stmt.HasOrderBy())) {
    out->push_back({OracleId::kRoundTrip,
                    "reparsed execution differs (" +
                        std::to_string(base.NumRows()) + " vs " +
                        std::to_string(result->NumRows()) +
                        " rows) sql=" + Clip(sql1)});
  }
}

void CheckTlp(const Executor& exec, const QueryGenerator& gen,
              const SelectStatement& stmt, const ResultTable& base,
              uint64_t oracle_seed, std::vector<OracleViolation>* out) {
  Rng rng(oracle_seed);
  auto p = gen.GeneratePredicateFor(stmt, rng);

  ResultTable combined;
  combined.column_names = base.column_names;
  for (int part = 0; part < 3; ++part) {
    auto clone = stmt.Clone();
    clone->order_by.clear();  // multiset comparison; skip the sort
    auto branch = p->Clone();
    if (part == 1) {
      branch = Expr::MakeUnary(UnaryOp::kNot, std::move(branch));
    } else if (part == 2) {
      branch = Expr::MakeUnary(UnaryOp::kIsNull, std::move(branch));
    }
    clone->where = AndWith(std::move(clone->where), std::move(branch));
    auto result = exec.Execute(*clone);
    if (!result.ok()) {
      out->push_back({OracleId::kTlp,
                      "partition " + std::to_string(part) + " failed: " +
                          result.status().ToString() + " p=" +
                          Clip(p->ToSql())});
      return;
    }
    for (auto& row : result->rows) combined.rows.push_back(std::move(row));
  }
  if (!sql::ResultsEquivalent(base, combined, /*ordered=*/false)) {
    out->push_back({OracleId::kTlp,
                    "partition union differs: " +
                        std::to_string(base.NumRows()) + " base rows vs " +
                        std::to_string(combined.NumRows()) +
                        " partitioned, p=" + Clip(p->ToSql())});
  }
}

void CheckNoRec(const Executor& exec, const SelectStatement& stmt,
                const ResultTable& base, std::vector<OracleViolation>* out) {
  auto probe = stmt.Clone();
  probe->order_by.clear();
  sql::SelectItem item;
  item.expr = probe->where->Clone();
  probe->select_list.clear();
  probe->select_list.push_back(std::move(item));
  probe->where.reset();

  auto result = exec.Execute(*probe);
  if (!result.ok()) {
    out->push_back({OracleId::kNoRec,
                    "hoisted predicate failed: " +
                        result.status().ToString()});
    return;
  }
  size_t truthy = 0;
  for (const auto& row : result->rows) {
    if (!row.empty() && Truthy(row[0])) ++truthy;
  }
  if (truthy != base.NumRows()) {
    out->push_back({OracleId::kNoRec,
                    "filtered row count " + std::to_string(base.NumRows()) +
                        " != " + std::to_string(truthy) +
                        " truthy hoisted predicates, p=" +
                        Clip(stmt.where->ToSql())});
  }
}

void CheckOrderLimit(const Executor& exec, const SelectStatement& stmt,
                     const ResultTable& base,
                     std::vector<OracleViolation>* out) {
  const ResultTable* full = &base;
  Result<ResultTable> unlimited = ResultTable{};
  if (stmt.limit.has_value()) {
    auto clone = stmt.Clone();
    clone->limit.reset();
    unlimited = exec.Execute(*clone);
    if (!unlimited.ok()) {
      out->push_back({OracleId::kOrderLimit,
                      "unlimited rerun failed: " +
                          unlimited.status().ToString()});
      return;
    }
    full = &*unlimited;

    // LIMIT k must produce the exact k-prefix of the unlimited result
    // (the sort is stable and execution deterministic, so even ties must
    // agree).
    size_t expect = std::min<size_t>(
        full->NumRows(),
        static_cast<size_t>(std::max<int64_t>(0, *stmt.limit)));
    bool prefix_ok = base.NumRows() == expect;
    for (size_t r = 0; prefix_ok && r < expect; ++r) {
      for (size_t c = 0; c < base.rows[r].size(); ++c) {
        if (!ValueExact(base.rows[r][c], full->rows[r][c])) {
          prefix_ok = false;
          break;
        }
      }
    }
    if (!prefix_ok) {
      out->push_back({OracleId::kOrderLimit,
                      "LIMIT " + std::to_string(*stmt.limit) +
                          " result is not a prefix of the unlimited result"});
      return;
    }
  }

  // Sortedness: map each ORDER BY key to the select column that prints
  // identically; check the matched key prefix is monotone under the
  // executor's comparator (NULLs sort first ascending).
  std::vector<std::pair<size_t, bool>> keys;  // (column index, ascending)
  for (const auto& order : stmt.order_by) {
    const std::string key_sql = order.expr->ToSql();
    bool matched = false;
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      if (stmt.select_list[i].expr->ToSql() == key_sql) {
        keys.emplace_back(i, order.ascending);
        matched = true;
        break;
      }
    }
    if (!matched) break;  // only a matched prefix is checkable
  }
  if (keys.empty()) return;
  for (size_t r = 1; r < full->rows.size(); ++r) {
    const auto& prev = full->rows[r - 1];
    const auto& cur = full->rows[r];
    for (const auto& [col, ascending] : keys) {
      int cmp = prev[col].Compare(cur[col]);
      if (cmp == 0) continue;
      bool ok = ascending ? cmp < 0 : cmp > 0;
      if (!ok) {
        out->push_back({OracleId::kOrderLimit,
                        "rows " + std::to_string(r - 1) + "/" +
                            std::to_string(r) +
                            " violate ORDER BY on output column " +
                            std::to_string(col)});
        return;
      }
      break;  // ordered by this key; later keys are tie-breakers only
    }
  }
}

/// Differential backend check: byte-identical results (or identical error
/// statuses) between the in-memory execution and the disk-backed one. The
/// disk backend may pick an index-scan access path, so this is what pins
/// access-path equivalence.
void CheckStorageDiff(const sql::ExecSource& storage,
                      const SelectStatement& stmt,
                      const Result<ResultTable>& base,
                      std::vector<OracleViolation>* out) {
  Executor disk_exec(storage);
  auto disk = disk_exec.Execute(stmt);
  if (base.ok() != disk.ok()) {
    out->push_back({OracleId::kStorageDiff,
                    std::string("backends disagree on outcome: memory=") +
                        (base.ok() ? "ok" : base.status().ToString()) +
                        " disk=" +
                        (disk.ok() ? "ok" : disk.status().ToString())});
    return;
  }
  if (!base.ok()) {
    if (base.status().code() != disk.status().code() ||
        base.status().message() != disk.status().message()) {
      out->push_back({OracleId::kStorageDiff,
                      "backends fail differently: memory=" +
                          base.status().ToString() +
                          " disk=" + disk.status().ToString()});
    }
    return;
  }
  if (base->column_names != disk->column_names) {
    out->push_back({OracleId::kStorageDiff,
                    "column names differ between backends"});
    return;
  }
  if (!TableExact(*base, *disk)) {
    out->push_back({OracleId::kStorageDiff,
                    "disk-backed result differs (" +
                        std::to_string(base->NumRows()) + " vs " +
                        std::to_string(disk->NumRows()) + " rows)"});
  }
}

}  // namespace

bool PartitionOraclesApplicable(const SelectStatement& stmt) {
  if (stmt.distinct || !stmt.group_by.empty() || stmt.having ||
      stmt.limit.has_value() || stmt.set_op != sql::SetOp::kNone) {
    return false;
  }
  for (const auto& item : stmt.select_list) {
    if (item.expr->ContainsAggregate()) return false;
  }
  return true;
}

std::vector<OracleViolation> RunOracles(const sql::Database& db,
                                        const QueryGenerator& gen,
                                        const SelectStatement& stmt,
                                        uint64_t oracle_seed,
                                        const sql::ExecSource* storage) {
  std::vector<OracleViolation> out;
  Executor exec(db);

  auto base = exec.Execute(stmt);
  // The differential oracle runs even for failing statements: the two
  // backends must agree on the error, not just on result bytes.
  if (storage != nullptr) CheckStorageDiff(*storage, stmt, base, &out);
  if (!base.ok()) {
    out.push_back({OracleId::kExec,
                   "execution failed: " + base.status().ToString()});
    return out;
  }

  CheckRerun(exec, stmt, *base, &out);
  CheckRoundTrip(exec, stmt, *base, &out);
  if (PartitionOraclesApplicable(stmt)) {
    CheckTlp(exec, gen, stmt, *base, oracle_seed, &out);
    if (stmt.where) CheckNoRec(exec, stmt, *base, &out);
  }
  if (!stmt.order_by.empty() && stmt.set_op == sql::SetOp::kNone) {
    CheckOrderLimit(exec, stmt, *base, &out);
  }
  return out;
}

}  // namespace codes::fuzz
