#include "fuzz/fuzz_harness.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <utility>

#include "common/rng.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "sqlengine/parser.h"
#include "storage/storage_db.h"

namespace codes::fuzz {

using sql::SelectStatement;

std::string FuzzFailure::ReproLine() const {
  const std::string& text = shrunk_sql.empty() ? sql : shrunk_sql;
  return "db=" + std::to_string(db_index) + " seed=" + std::to_string(seed) +
         " oracle=" + OracleName(oracle) + " sql=" + text;
}

std::string FuzzReport::Summary() const {
  std::string out = "fuzz campaign: " + std::to_string(queries) +
                    " queries, " + std::to_string(failures.size()) +
                    " violation(s)\n";
  std::map<std::string, int> by_oracle;
  for (const auto& f : failures) ++by_oracle[OracleName(f.oracle)];
  for (const auto& [name, count] : by_oracle) {
    out += "  " + name + ": " + std::to_string(count) + "\n";
  }
  return out;
}

std::vector<sql::Database> BuildFuzzDatabases(int count) {
  const auto& domains = AllDomains();
  std::vector<sql::Database> dbs;
  dbs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const DomainSpec& domain = domains[static_cast<size_t>(i) %
                                       domains.size()];
    DbProfile profile = (i % 2 == 0) ? DbProfile::Spider() : DbProfile::Bird();
    // A NULL-heavy pool keeps three-valued-logic paths hot in every
    // campaign; the oracles (TLP especially) exist to check exactly those.
    profile.null_probability = 0.12;
    Rng rng(0xF0DD5EEDULL + static_cast<uint64_t>(i) * 0x9E3779B9ULL);
    dbs.push_back(
        GenerateDatabase(domain, profile, rng, "fz" + std::to_string(i)));
  }
  return dbs;
}

namespace {

/// True when `stmt` still trips the same oracle with the same seed.
bool StillFails(const sql::Database& db, const QueryGenerator& gen,
                const SelectStatement& stmt, uint64_t oracle_seed,
                OracleId oracle, const sql::ExecSource* storage) {
  for (const auto& v : RunOracles(db, gen, stmt, oracle_seed, storage)) {
    if (v.oracle == oracle) return true;
  }
  return false;
}

/// Disk-backed twins of the campaign's database pool, built once before
/// the parallel phase (read-only afterwards, so sharing across query
/// shards is safe). A build failure leaves a null slot, which simply
/// disables the storagediff oracle for that database.
std::vector<std::unique_ptr<storage::StorageDb>> BuildStorageTwins(
    const std::vector<sql::Database>& dbs) {
  std::vector<std::unique_ptr<storage::StorageDb>> twins;
  twins.reserve(dbs.size());
  for (const auto& db : dbs) {
    auto built = storage::StorageDb::CreateInMemoryFrom(db);
    twins.push_back(built.ok() ? std::move(*built) : nullptr);
  }
  return twins;
}

/// One-step simplifications of `stmt`, roughly largest-deletion first.
/// Candidates that break the query (e.g. dropping a join another clause
/// references) simply fail to reproduce and are skipped by the caller.
std::vector<std::unique_ptr<SelectStatement>> ShrinkCandidates(
    const SelectStatement& stmt) {
  std::vector<std::unique_ptr<SelectStatement>> out;
  auto variant = [&](auto mutate) {
    auto clone = stmt.Clone();
    mutate(*clone);
    out.push_back(std::move(clone));
  };

  if (stmt.set_op != sql::SetOp::kNone) {
    variant([](SelectStatement& s) {
      s.set_op = sql::SetOp::kNone;
      s.set_rhs.reset();
    });
  }
  for (size_t j = stmt.joins.size(); j > 0; --j) {
    variant([j](SelectStatement& s) {
      s.joins.erase(s.joins.begin() + static_cast<long>(j - 1));
    });
  }
  if (stmt.where) {
    variant([](SelectStatement& s) { s.where.reset(); });
    // Descend into the predicate: try each operand of a top-level
    // AND/OR/NOT as the whole WHERE clause. Iterating the shrink loop
    // walks this one level at a time down to a minimal subtree.
    const sql::Expr& w = *stmt.where;
    if (w.kind == sql::ExprKind::kBinary &&
        (w.binary_op == sql::BinaryOp::kAnd ||
         w.binary_op == sql::BinaryOp::kOr)) {
      for (size_t c = 0; c < w.children.size(); ++c) {
        variant([&w, c](SelectStatement& s) {
          s.where = w.children[c]->Clone();
        });
      }
    } else if (w.kind == sql::ExprKind::kUnary &&
               w.unary_op == sql::UnaryOp::kNot) {
      variant([&w](SelectStatement& s) { s.where = w.children[0]->Clone(); });
    }
  }
  if (!stmt.group_by.empty()) {
    variant([](SelectStatement& s) {
      s.group_by.clear();
      s.having.reset();
    });
  }
  if (stmt.having) {
    variant([](SelectStatement& s) { s.having.reset(); });
  }
  if (!stmt.order_by.empty()) {
    variant([](SelectStatement& s) { s.order_by.clear(); });
  }
  if (stmt.limit.has_value()) {
    variant([](SelectStatement& s) { s.limit.reset(); });
  }
  if (stmt.distinct) {
    variant([](SelectStatement& s) { s.distinct = false; });
  }
  if (stmt.select_list.size() > 1) {
    for (size_t i = 0; i < stmt.select_list.size(); ++i) {
      variant([i](SelectStatement& s) {
        auto keep = std::move(s.select_list[i]);
        s.select_list.clear();
        s.select_list.push_back(std::move(keep));
      });
    }
  }
  return out;
}

}  // namespace

std::unique_ptr<SelectStatement> ShrinkFailure(const sql::Database& db,
                                               const QueryGenerator& gen,
                                               const SelectStatement& stmt,
                                               uint64_t oracle_seed,
                                               OracleId oracle, int budget,
                                               const sql::ExecSource* storage) {
  auto current = stmt.Clone();
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    for (auto& candidate : ShrinkCandidates(*current)) {
      if (--budget < 0) break;
      if (StillFails(db, gen, *candidate, oracle_seed, oracle, storage)) {
        current = std::move(candidate);
        improved = true;
        break;  // restart from the smaller statement
      }
    }
  }
  return current;
}

FuzzReport RunFuzzCampaign(const FuzzConfig& config, ThreadPool* pool) {
  FuzzReport report;
  const size_t n = static_cast<size_t>(std::max(config.num_queries, 0));
  report.queries = n;

  std::vector<sql::Database> dbs =
      BuildFuzzDatabases(std::max(config.num_databases, 1));
  std::vector<QueryGenerator> gens;
  gens.reserve(dbs.size());
  for (const auto& db : dbs) gens.emplace_back(db, config.gen);
  std::vector<std::unique_ptr<storage::StorageDb>> twins;
  if (config.storage_diff) twins = BuildStorageTwins(dbs);
  auto twin_of = [&twins](int db_index) -> const sql::ExecSource* {
    if (twins.empty()) return nullptr;
    return twins[static_cast<size_t>(db_index)].get();
  };

  // Each query derives everything from base_seed + i and writes into its
  // own slot, so the merged report is independent of sharding.
  std::vector<std::unique_ptr<FuzzFailure>> slots(n);
  auto run_one = [&](size_t i) {
    uint64_t seed = config.base_seed + i;
    Rng rng(seed);
    int db_index = static_cast<int>(rng.Index(dbs.size()));
    auto stmt = gens[static_cast<size_t>(db_index)].Generate(rng);
    uint64_t oracle_seed = rng.Next();
    auto violations =
        RunOracles(dbs[static_cast<size_t>(db_index)],
                   gens[static_cast<size_t>(db_index)], *stmt, oracle_seed,
                   twin_of(db_index));
    if (violations.empty()) return;
    auto failure = std::make_unique<FuzzFailure>();
    failure->query_index = i;
    failure->seed = seed;
    failure->db_index = db_index;
    failure->oracle = violations[0].oracle;
    failure->detail = violations[0].detail;
    failure->sql = stmt->ToSql();
    slots[i] = std::move(failure);
  };

  if (pool != nullptr) {
    pool->ParallelFor(n, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) run_one(i);
    });
  } else {
    for (size_t i = 0; i < n; ++i) run_one(i);
  }

  // Serial post-pass: collect failures in index order and shrink each by
  // regenerating its statement from the recorded seed.
  for (auto& slot : slots) {
    if (slot == nullptr) continue;
    if (config.shrink) {
      Rng rng(slot->seed);
      int db_index = static_cast<int>(rng.Index(dbs.size()));
      auto stmt = gens[static_cast<size_t>(db_index)].Generate(rng);
      uint64_t oracle_seed = rng.Next();
      auto shrunk = ShrinkFailure(dbs[static_cast<size_t>(db_index)],
                                  gens[static_cast<size_t>(db_index)], *stmt,
                                  oracle_seed, slot->oracle,
                                  config.shrink_budget, twin_of(db_index));
      std::string shrunk_sql = shrunk->ToSql();
      if (shrunk_sql != slot->sql) slot->shrunk_sql = std::move(shrunk_sql);
    }
    report.failures.push_back(std::move(*slot));
  }
  return report;
}

Result<std::vector<CorpusEntry>> LoadCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open corpus file " + path);
  }
  std::vector<CorpusEntry> entries;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    CorpusEntry entry;
    entry.line = line_number;
    size_t sql_pos = line.find("sql=");
    if (sql_pos == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": missing sql= field");
    }
    entry.sql = line.substr(sql_pos + 4);
    std::string head = line.substr(0, sql_pos);
    auto field = [&head](const std::string& key) -> std::string {
      size_t at = head.find(key + "=");
      if (at == std::string::npos) return "";
      size_t start = at + key.size() + 1;
      size_t end = head.find(' ', start);
      return head.substr(start, end == std::string::npos ? end : end - start);
    };
    std::string db_text = field("db");
    std::string seed_text = field("seed");
    entry.oracle = field("oracle");
    if (db_text.empty() || seed_text.empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_number) +
                                     ": missing db= or seed= field");
    }
    entry.db_index = std::atoi(db_text.c_str());
    entry.seed = std::strtoull(seed_text.c_str(), nullptr, 10);
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<std::vector<OracleViolation>> ReplayCorpusEntry(
    const std::vector<sql::Database>& dbs, const CorpusEntry& entry) {
  if (entry.db_index < 0 ||
      entry.db_index >= static_cast<int>(dbs.size())) {
    return Status::InvalidArgument("corpus entry db index " +
                                   std::to_string(entry.db_index) +
                                   " out of range");
  }
  auto parsed = sql::ParseSql(entry.sql);
  if (!parsed.ok()) {
    return Status::ParseError("corpus SQL no longer parses: " +
                              parsed.status().message() +
                              " sql=" + entry.sql);
  }
  const sql::Database& db = dbs[static_cast<size_t>(entry.db_index)];
  QueryGenerator gen(db);
  std::unique_ptr<storage::StorageDb> twin;
  auto built = storage::StorageDb::CreateInMemoryFrom(db);
  if (built.ok()) twin = std::move(*built);
  return RunOracles(db, gen, **parsed, entry.seed, twin.get());
}

}  // namespace codes::fuzz
