#ifndef CODES_FUZZ_ORACLE_H_
#define CODES_FUZZ_ORACLE_H_

#include <string>
#include <vector>

#include "fuzz/query_gen.h"
#include "sqlengine/ast.h"
#include "sqlengine/database.h"

namespace codes::fuzz {

/// The metamorphic oracles the harness checks each generated query
/// against. Each one derives a second query (or execution) whose result
/// is *provably related* to the original's, so a mismatch is an engine
/// bug without needing a reference implementation:
///
///  * kExec       — the generated query itself must execute (the
///                  generator only emits supported SQL).
///  * kRoundTrip  — ToSql() -> parse -> ToSql() must be a fixpoint, the
///                  structural fingerprints must match, and the reparsed
///                  statement must produce the same result.
///  * kRerun      — executing the same statement twice must be
///                  byte-identical (catches mutable scratch-state
///                  pollution in the AST).
///  * kTlp        — ternary logic partitioning: for a row-local predicate
///                  p, Q == Q+p UNION-ALL Q+(NOT p) UNION-ALL
///                  Q+(p IS NULL) as multisets (SQL three-valued logic
///                  makes the three branches an exact partition).
///  * kNoRec      — predicate hoisting: |SELECT ... WHERE p| must equal
///                  the number of rows for which p evaluates truthy when
///                  moved into the select list of the unfiltered query.
///  * kOrderLimit — ORDER BY output must be sorted on its keys and a
///                  LIMIT k result must be the exact k-prefix of the
///                  unlimited result.
///  * kStorageDiff — differential backend check: the same statement run
///                  against a disk-backed storage::StorageDb copy of the
///                  database must be byte-identical to the in-memory
///                  execution (same result cells, same column names, or
///                  the same error status). Exercises the index-scan
///                  access path the in-memory backend never takes.
enum class OracleId {
  kExec,
  kRoundTrip,
  kRerun,
  kTlp,
  kNoRec,
  kOrderLimit,
  kStorageDiff,
};

/// Stable lowercase name ("exec", "roundtrip", "rerun", "tlp", "norec",
/// "orderlimit", "storagediff") used in reproducer lines and corpus files.
const char* OracleName(OracleId id);

/// One oracle violation for one query.
struct OracleViolation {
  OracleId oracle = OracleId::kExec;
  std::string detail;  ///< human-readable mismatch description
};

/// True when TLP and NoREC apply to `stmt`: the query must be a plain
/// row-filter (no aggregation, grouping, HAVING, DISTINCT, LIMIT, or set
/// operation), since each of those breaks the row-multiset partition
/// argument. ORDER BY is fine — comparisons are order-insensitive.
bool PartitionOraclesApplicable(const sql::SelectStatement& stmt);

/// Runs every applicable oracle against `stmt` on `db`. `oracle_seed`
/// drives the TLP partition predicate via `gen`, so a (query, seed) pair
/// fully determines the outcome. Returns all violations (empty = clean).
///
/// When `storage` is non-null it must be a second backend holding the same
/// logical content as `db` (typically a storage::StorageDb built from it);
/// the kStorageDiff oracle then compares the two executions. Null skips
/// that oracle.
std::vector<OracleViolation> RunOracles(const sql::Database& db,
                                        const QueryGenerator& gen,
                                        const sql::SelectStatement& stmt,
                                        uint64_t oracle_seed,
                                        const sql::ExecSource* storage =
                                            nullptr);

}  // namespace codes::fuzz

#endif  // CODES_FUZZ_ORACLE_H_
