#ifndef CODES_FUZZ_FUZZ_HARNESS_H_
#define CODES_FUZZ_FUZZ_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "fuzz/oracle.h"
#include "fuzz/query_gen.h"
#include "sqlengine/database.h"

namespace codes::fuzz {

/// Campaign configuration. Query `i` of a campaign is fully determined by
/// `base_seed + i` (database choice, query shape, and the TLP partition
/// predicate all derive from that one seed), so any failure replays from
/// its reproducer line alone — the thread count never affects results.
struct FuzzConfig {
  uint64_t base_seed = 1;
  int num_queries = 1000;
  int num_databases = 8;
  bool shrink = true;        ///< minimize failing queries by AST deletion
  int shrink_budget = 200;   ///< max oracle re-evaluations per failure
  /// Run every query against a disk-backed StorageDb copy of its database
  /// as well and diff the two executions (the storagediff oracle). The
  /// copies are built once per campaign, before the parallel phase.
  bool storage_diff = true;
  GenOptions gen;
};

/// One oracle violation found by a campaign, with enough context to
/// replay it (`codes_fuzz --seed=<seed> --schema=<db>`).
struct FuzzFailure {
  size_t query_index = 0;
  uint64_t seed = 0;     ///< per-query seed (base_seed + index)
  int db_index = 0;
  OracleId oracle = OracleId::kExec;
  std::string detail;
  std::string sql;         ///< query as generated
  std::string shrunk_sql;  ///< minimized query (empty when not shrunk)

  /// One-line reproducer: "db=<i> seed=<s> oracle=<name> sql=<sql>".
  std::string ReproLine() const;
};

/// Campaign outcome. `Summary()` is deterministic text (no timing, no
/// thread counts), suitable for golden comparison across runs.
struct FuzzReport {
  size_t queries = 0;
  std::vector<FuzzFailure> failures;  ///< sorted by query_index

  bool Clean() const { return failures.empty(); }
  std::string Summary() const;
};

/// Builds the deterministic database pool fuzz campaigns run against:
/// `count` databases cycling through the domain catalog, alternating
/// Spider/Bird profiles, with an elevated NULL rate so three-valued logic
/// paths are exercised constantly.
std::vector<sql::Database> BuildFuzzDatabases(int count);

/// Runs a fuzz campaign. When `pool` is non-null the per-query work is
/// sharded over it; results are written to pre-assigned slots so output
/// is byte-identical for any thread count. Shrinking runs serially after
/// the parallel phase.
FuzzReport RunFuzzCampaign(const FuzzConfig& config, ThreadPool* pool);

/// Minimizes `stmt` by clause/subtree deletion while it still trips
/// `oracle` (with the same oracle seed). Returns the smallest failing
/// statement found within `budget` oracle evaluations.
/// `storage` (may be null) is the disk-backed twin of `db`, forwarded to
/// RunOracles so storagediff failures keep reproducing while shrinking.
std::unique_ptr<sql::SelectStatement> ShrinkFailure(
    const sql::Database& db, const QueryGenerator& gen,
    const sql::SelectStatement& stmt, uint64_t oracle_seed, OracleId oracle,
    int budget, const sql::ExecSource* storage = nullptr);

/// One line of a seed-corpus file. Format (one entry per line, '#' or
/// blank lines skipped):
///   db=<index> seed=<oracle-seed> oracle=<name> sql=<SELECT ...>
/// `oracle` records which oracle originally caught the bug (informational
/// — replay always runs every oracle).
struct CorpusEntry {
  int db_index = 0;
  uint64_t seed = 0;
  std::string oracle;
  std::string sql;
  int line = 0;  ///< 1-based source line, for error messages
};

Result<std::vector<CorpusEntry>> LoadCorpusFile(const std::string& path);

/// Replays one corpus entry: parses its SQL and runs every oracle against
/// the given database — including the storagediff oracle, against a
/// freshly built disk-backed copy. Returns the violations (empty = clean)
/// or an error when the SQL no longer parses / the database index is out
/// of range.
Result<std::vector<OracleViolation>> ReplayCorpusEntry(
    const std::vector<sql::Database>& dbs, const CorpusEntry& entry);

}  // namespace codes::fuzz

#endif  // CODES_FUZZ_FUZZ_HARNESS_H_
