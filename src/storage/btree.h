#ifndef CODES_STORAGE_BTREE_H_
#define CODES_STORAGE_BTREE_H_

// Page-based B+ tree over the buffer pool, used for primary and secondary
// indexes. Keys are composite (sql::Value, Rid): the RID tiebreak makes
// every entry unique, which is how duplicate column values (secondary
// indexes) get well-defined ordering and exact deletes. Value ordering is
// sql::Value::Compare — numerically for INTEGER/REAL, lexicographically
// for TEXT — which matches the executor's predicate semantics exactly when
// a column is single-class (see ColumnIndexStats::ValueClass).
//
// Node pages hold variable-length serialized entries; splits fire when a
// node overflows its page, merges/borrows fire when a delete leaves a node
// under a quarter of a page. storage.split injects faults at split entry.
//
// Iterators are forward-only snapshots of one leaf at a time; ANY tree
// mutation invalidates every outstanding iterator (the property test pins
// this rule by re-seeking after each mutation batch).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sqlengine/exec_source.h"
#include "sqlengine/value.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace codes::storage {

class BPlusTree {
 public:
  /// Attaches to an existing tree (root from catalog) or an empty one
  /// (kInvalidPageId; the root leaf is allocated on first insert).
  explicit BPlusTree(BufferPool* pool, PageId root = kInvalidPageId);

  PageId root() const { return root_; }

  /// Materialized node image; public so the file-local page codec helpers
  /// in btree.cc can operate on it. Not part of the external API.
  struct Node;

  Status Insert(const sql::Value& key, const Rid& rid);

  /// Removes the exact (key, rid) entry; NotFound when absent.
  Status Remove(const sql::Value& key, const Rid& rid);

  Result<bool> Contains(const sql::Value& key, const Rid& rid) const;

  /// One index entry as seen by an iterator.
  struct Entry {
    sql::Value key;
    Rid rid;
  };

  /// Forward iterator; see the invalidation rule in the file comment.
  class Iterator {
   public:
    bool Valid() const { return pos_ < entries_.size(); }
    const sql::Value& key() const { return entries_[pos_].key; }
    const Rid& rid() const { return entries_[pos_].rid; }
    Status Advance();

   private:
    friend class BPlusTree;
    const BPlusTree* tree_ = nullptr;
    std::vector<Entry> entries_;  ///< decoded current leaf
    size_t pos_ = 0;
    PageId next_leaf_ = kInvalidPageId;
  };

  /// Iterator at the smallest entry.
  Result<Iterator> SeekFirst() const;

  /// Iterator at the first entry with key >= `key` (any RID).
  Result<Iterator> Seek(const sql::Value& key) const;

  /// Appends the RIDs of every entry whose key falls within [lo, hi]
  /// under Value::Compare (sql::IndexBound semantics; null bound pointer =
  /// unbounded). RIDs are appended in key order, NOT row order.
  Status CollectRange(const sql::IndexBound& lo, const sql::IndexBound& hi,
                      std::vector<Rid>* out) const;

  /// Total number of entries (walks the leaf chain).
  Result<uint64_t> CountEntries() const;

 private:
  struct InsertOutcome;

  Status LoadLeafInto(PageId leaf, Iterator* it) const;
  Status InsertRec(PageId node_id, const std::string& leaf_entry,
                   const sql::Value& key, const Rid& rid,
                   InsertOutcome* outcome);
  Status RemoveRec(PageId node_id, const sql::Value& key, const Rid& rid,
                   bool* removed);
  Status RebalanceChild(Node* parent, PageId parent_id, int child_pos);

  BufferPool* pool_;
  PageId root_;
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_BTREE_H_
