#ifndef CODES_STORAGE_STORAGE_DB_H_
#define CODES_STORAGE_STORAGE_DB_H_

// Disk-backed database engine: the second sql::ExecSource backend. A
// StorageDb holds the same logical content as an in-memory sql::Database —
// schema, tables in insertion order — but stores rows in slotted table-heap
// pages behind a buffer pool, with B+ tree indexes over every clean-class
// column (see ColumnIndexStats::ValueClass).
//
// File layout: page 0 heads a chained catalog (schema + per-table heap
// extents + per-index roots and stats); heap and index pages follow in
// allocation order. Open() is LAZY: it reads only the catalog chain, so
// cold-open cost is independent of row count — heap/index pages fault in
// through the buffer pool on first access (a regression test pins this).
//
// Crash safety (DESIGN.md section 15): with a WAL attached, mutations are
// batched — AppendRows stages rows in the buffer pool (no-steal: nothing
// uncommitted reaches the data file), CommitBatch logs page images + a
// commit marker and group-flushes the WAL, Checkpoint materializes the
// data file and truncates the log. Open paths with a WAL run redo
// recovery first: replay every page image up to the last commit/checkpoint
// marker, discard the uncommitted/torn tail, checkpoint. Instrumented as
// storage.wal.* / storage.recovery.* metrics and spans.
//
// Lifecycle contract: build (CreateFrom) and mutation
// (AppendRows/CommitBatch/Checkpoint) are single-threaded; between
// mutation batches the database is read-consistent and every accessor —
// Scan/IndexScan/IndexStats/Materialize — is safe to call from any number
// of threads concurrently (the buffer pool serializes frame bookkeeping).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sqlengine/exec_source.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/crash_sim.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/table_heap.h"
#include "storage/wal.h"

namespace codes::storage {

class StorageDb : public sql::ExecSource {
 public:
  /// Default buffer-pool size for general use; tests shrink it to force
  /// eviction traffic.
  static constexpr size_t kDefaultPoolFrames = 64;

  /// Bulk-loads every table (and index) of `src` into `disk` and returns
  /// the resulting engine. `disk` must be freshly created (empty).
  static Result<std::unique_ptr<StorageDb>> CreateFrom(
      const sql::ExecSource& src, std::unique_ptr<DiskManager> disk,
      size_t pool_frames = kDefaultPoolFrames);

  /// CreateFrom over an in-memory page store — the form the differential
  /// harness and fuzz oracle use (no filesystem traffic).
  static Result<std::unique_ptr<StorageDb>> CreateInMemoryFrom(
      const sql::ExecSource& src, size_t pool_frames = kDefaultPoolFrames);

  /// CreateFrom into simulated storage under `env` (crash campaigns),
  /// WAL-enabled: the data file is `name`, the log `name + ".wal"`. The
  /// bulk load itself is durable (synced + checkpointed) on return.
  static Result<std::unique_ptr<StorageDb>> CreateSimFrom(
      const sql::ExecSource& src, SimEnv* env, const std::string& name,
      size_t pool_frames = kDefaultPoolFrames);

  /// Cold-opens an existing database file. Reads ONLY the catalog chain;
  /// row data faults in lazily on first access. No WAL: the database is
  /// read-only in this mode.
  static Result<std::unique_ptr<StorageDb>> Open(
      const std::string& path, size_t pool_frames = kDefaultPoolFrames);

  /// Opens `path` with its WAL at `wal_path`, running redo recovery
  /// before the catalog is read. The returned database accepts mutation
  /// batches.
  static Result<std::unique_ptr<StorageDb>> OpenWithWal(
      const std::string& path, const std::string& wal_path,
      size_t pool_frames = kDefaultPoolFrames);

  /// OpenWithWal over simulated storage (post-crash reopen in campaigns;
  /// call env->Reboot() first). Data file `name`, log `name + ".wal"`.
  static Result<std::unique_ptr<StorageDb>> OpenSim(
      SimEnv* env, const std::string& name,
      size_t pool_frames = kDefaultPoolFrames);

  /// Attaches a fresh (empty) WAL to a freshly built file-backed database,
  /// enabling mutation batches. The data file is synced first so the
  /// empty log is trivially consistent. Fails if the log is non-empty
  /// (that state needs OpenWithWal's recovery path instead).
  Status EnableWal(const std::string& wal_path);

  /// Writes all committed dirty pages back and syncs the file.
  Status Flush();

  // --- mutation batches (WAL required except for AppendRows staging) ---

  /// Appends `rows` to table `table_index`, maintaining every index and
  /// its stats. Changes are staged in the buffer pool until CommitBatch.
  /// A column whose new values break index ordering (mixed value classes
  /// or oversized keys) drops its index, mirroring CreateFrom's abandon
  /// semantics.
  Status AppendRows(int table_index, const std::vector<sql::Row>& rows);

  /// Makes every staged change durable: rewrites the catalog, logs page
  /// images for all unlogged dirty pages, appends a commit marker, and
  /// group-flushes the WAL. On return the batch survives any crash.
  Status CommitBatch();

  /// Materializes committed state into the data file and truncates the
  /// WAL (bounding replay work). Implies CommitBatch for staged changes.
  Status Checkpoint();

  // --- sql::ExecSource ---
  const sql::DatabaseSchema& schema() const override { return schema_; }
  size_t SourceRowCount(int table_index) const override;
  std::unique_ptr<sql::RowCursor> Scan(int table_index) const override;
  bool IndexStats(int table_index, int column_index,
                  sql::ColumnIndexStats* out) const override;
  std::unique_ptr<sql::RowCursor> IndexScan(
      int table_index, int column_index, const sql::IndexBound& lo,
      const sql::IndexBound& hi) const override;

  /// Bench/test knob: when false, IndexStats reports no indexes, forcing
  /// the executor onto sequential scans (used to measure the index-scan
  /// speedup and to diff the two access paths against each other).
  void set_index_scans_enabled(bool enabled) {
    index_scans_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool index_scans_enabled() const {
    return index_scans_enabled_.load(std::memory_order_relaxed);
  }

  /// Eagerly reads one whole table (testing/inspection helper).
  Result<std::vector<sql::Row>> Materialize(int table_index) const;

  const DiskManager& disk() const { return *disk_; }
  /// Mutable disk access for corruption-injection tests.
  DiskManager& mutable_disk() { return *disk_; }
  const BufferPool& buffer_pool() const { return *pool_; }
  size_t index_count() const { return indexes_.size(); }
  const Wal* wal() const { return wal_.get(); }

 private:
  struct TableInfo {
    TableHeap heap;
  };

  struct IndexInfo {
    uint32_t table = 0;
    uint32_t column = 0;
    PageId root = kInvalidPageId;
    sql::ColumnIndexStats stats;
  };

  StorageDb() = default;

  Status WriteCatalog();
  Status ReadCatalog();
  std::string SerializeCatalog() const;
  Status ParseCatalog(const std::string& blob);
  const IndexInfo* FindIndex(int table_index, int column_index) const;
  void DropIndex(size_t position);

  /// Redo recovery: replays `wal` into `disk` up to the last commit or
  /// checkpoint marker, discards the tail, then checkpoints (sync data,
  /// truncate log). Runs before any catalog read.
  static Status Recover(DiskManager* disk, Wal* wal);

  /// Shared tail of the WAL-enabled open paths.
  static Result<std::unique_ptr<StorageDb>> OpenWithWalImpl(
      std::unique_ptr<DiskManager> disk, std::unique_ptr<Wal> wal,
      size_t pool_frames);

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<Wal> wal_;  ///< null for read-only / legacy databases
  std::unique_ptr<BufferPool> pool_;
  sql::DatabaseSchema schema_;
  std::vector<TableInfo> tables_;
  std::vector<IndexInfo> indexes_;
  /// (table << 32 | column) -> position in indexes_.
  std::unordered_map<uint64_t, size_t> index_lookup_;
  std::atomic<bool> index_scans_enabled_{true};
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_STORAGE_DB_H_
