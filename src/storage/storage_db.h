#ifndef CODES_STORAGE_STORAGE_DB_H_
#define CODES_STORAGE_STORAGE_DB_H_

// Disk-backed database engine: the second sql::ExecSource backend. A
// StorageDb holds the same logical content as an in-memory sql::Database —
// schema, tables in insertion order — but stores rows in slotted table-heap
// pages behind a buffer pool, with B+ tree indexes over every clean-class
// column (see ColumnIndexStats::ValueClass).
//
// File layout: page 0 heads a chained catalog (schema + per-table heap
// extents + per-index roots and stats); heap and index pages follow in
// allocation order. Open() is LAZY: it reads only the catalog chain, so
// cold-open cost is independent of row count — heap/index pages fault in
// through the buffer pool on first access (a regression test pins this).
//
// Lifecycle contract: build (CreateFrom) is single-threaded; after the
// catalog is written the database is read-only and every accessor —
// Scan/IndexScan/IndexStats/Materialize — is safe to call from any number
// of threads concurrently (the buffer pool serializes frame bookkeeping).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sqlengine/exec_source.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/table_heap.h"

namespace codes::storage {

class StorageDb : public sql::ExecSource {
 public:
  /// Default buffer-pool size for general use; tests shrink it to force
  /// eviction traffic.
  static constexpr size_t kDefaultPoolFrames = 64;

  /// Bulk-loads every table (and index) of `src` into `disk` and returns
  /// the resulting engine. `disk` must be freshly created (empty).
  static Result<std::unique_ptr<StorageDb>> CreateFrom(
      const sql::ExecSource& src, std::unique_ptr<DiskManager> disk,
      size_t pool_frames = kDefaultPoolFrames);

  /// CreateFrom over an in-memory page store — the form the differential
  /// harness and fuzz oracle use (no filesystem traffic).
  static Result<std::unique_ptr<StorageDb>> CreateInMemoryFrom(
      const sql::ExecSource& src, size_t pool_frames = kDefaultPoolFrames);

  /// Cold-opens an existing database file. Reads ONLY the catalog chain;
  /// row data faults in lazily on first access.
  static Result<std::unique_ptr<StorageDb>> Open(
      const std::string& path, size_t pool_frames = kDefaultPoolFrames);

  /// Writes all dirty pages back and flushes the file.
  Status Flush();

  // --- sql::ExecSource ---
  const sql::DatabaseSchema& schema() const override { return schema_; }
  size_t SourceRowCount(int table_index) const override;
  std::unique_ptr<sql::RowCursor> Scan(int table_index) const override;
  bool IndexStats(int table_index, int column_index,
                  sql::ColumnIndexStats* out) const override;
  std::unique_ptr<sql::RowCursor> IndexScan(
      int table_index, int column_index, const sql::IndexBound& lo,
      const sql::IndexBound& hi) const override;

  /// Bench/test knob: when false, IndexStats reports no indexes, forcing
  /// the executor onto sequential scans (used to measure the index-scan
  /// speedup and to diff the two access paths against each other).
  void set_index_scans_enabled(bool enabled) {
    index_scans_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool index_scans_enabled() const {
    return index_scans_enabled_.load(std::memory_order_relaxed);
  }

  /// Eagerly reads one whole table (testing/inspection helper).
  Result<std::vector<sql::Row>> Materialize(int table_index) const;

  const DiskManager& disk() const { return *disk_; }
  const BufferPool& buffer_pool() const { return *pool_; }
  size_t index_count() const { return indexes_.size(); }

 private:
  struct TableInfo {
    TableHeap heap;
  };

  struct IndexInfo {
    uint32_t table = 0;
    uint32_t column = 0;
    PageId root = kInvalidPageId;
    sql::ColumnIndexStats stats;
  };

  StorageDb() = default;

  Status WriteCatalog();
  Status ReadCatalog();
  std::string SerializeCatalog() const;
  Status ParseCatalog(const std::string& blob);
  const IndexInfo* FindIndex(int table_index, int column_index) const;

  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  sql::DatabaseSchema schema_;
  std::vector<TableInfo> tables_;
  std::vector<IndexInfo> indexes_;
  /// (table << 32 | column) -> position in indexes_.
  std::unordered_map<uint64_t, size_t> index_lookup_;
  std::atomic<bool> index_scans_enabled_{true};
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_STORAGE_DB_H_
