#ifndef CODES_STORAGE_TABLE_HEAP_H_
#define CODES_STORAGE_TABLE_HEAP_H_

// Append-only slotted-page table heap. Page layout:
//
//   [u16 slot_count][u16 payload_start][u32 next_page]   8-byte header
//   [u16 offset][u16 length] x slot_count                slot directory
//   ... free space ...
//   [record bytes]                                        payload, grows down
//
// Records are serialized rows (record_codec). Rows are appended in
// insertion order and never moved, so (page, slot) RIDs are monotone with
// insertion order — scanning pages front-to-back yields exactly the
// in-memory backend's row order.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "sqlengine/exec_source.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace codes::storage {

class TableHeap {
 public:
  /// Allocates the first page of a new heap.
  static Result<TableHeap> Create(BufferPool* pool);

  /// Attaches to an existing heap (from catalog metadata).
  TableHeap(BufferPool* pool, PageId first_page, PageId last_page,
            uint64_t row_count);

  /// Appends one row; allocates a fresh page when the current tail page
  /// cannot hold it. Fails with ResourceExhausted when the serialized row
  /// exceeds single-page capacity.
  Result<Rid> Append(const std::vector<sql::Value>& row);

  /// Reads the row stored at `rid`.
  Status Fetch(const Rid& rid, std::vector<sql::Value>* out) const;

  PageId first_page() const { return first_page_; }
  PageId last_page() const { return last_page_; }
  uint64_t row_count() const { return row_count_; }

  /// Largest serialized row one page can hold (header + one slot).
  static size_t MaxRecordBytes();

  /// Forward scan over all rows in insertion order. I/O errors end the
  /// stream and are reported through status().
  class Cursor final : public sql::RowCursor {
   public:
    Cursor(BufferPool* pool, PageId first_page);
    bool Next(sql::Row* out) override;
    Status status() const override { return status_; }

   private:
    BufferPool* pool_;
    PageId page_id_;
    uint32_t slot_ = 0;
    PageGuard guard_;  ///< pin on the current page
    Status status_ = Status::Ok();
    bool done_ = false;
  };

  std::unique_ptr<sql::RowCursor> Scan() const;

 private:
  BufferPool* pool_;
  PageId first_page_ = kInvalidPageId;
  PageId last_page_ = kInvalidPageId;
  uint64_t row_count_ = 0;
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_TABLE_HEAP_H_
