#include "storage/disk_manager.h"

#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/metrics.h"

namespace codes::storage {

namespace {

Counter& PageReadCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.page_reads");
  return c;
}

Counter& PageWriteCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.page_writes");
  return c;
}

Counter& ChecksumFailureCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.checksum_failures");
  return c;
}

/// Bytes a torn write persists when storage.torn_write fires: enough to
/// cover the checksum field and part of the payload, so the tear is
/// guaranteed to be detectable (stale tail under a fresh checksum).
constexpr size_t kTornWriteBytes = kPageSize / 2;

bool IsAllZero(const std::byte* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != std::byte{0}) return false;
  }
  return true;
}

}  // namespace

std::unique_ptr<DiskManager> DiskManager::CreateInMemory() {
  return std::unique_ptr<DiskManager>(new DiskManager());
}

Result<std::unique_ptr<DiskManager>> DiskManager::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::Internal("cannot create database file: " + path);
  }
  auto dm = std::unique_ptr<DiskManager>(new DiskManager());
  dm->file_ = f;
  return dm;
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::NotFound("cannot open database file: " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::Internal("cannot size database file: " + path);
  }
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::Internal("cannot size database file: " + path);
  }
  auto dm = std::unique_ptr<DiskManager>(new DiskManager());
  dm->file_ = f;
  // Round DOWN: a crash can tear the write that extended the file, leaving
  // a partial trailing page. The tail is unreadable garbage either way;
  // recovery re-extends from the WAL.
  dm->page_count_ = static_cast<size_t>(size) / kPageSize;
  return dm;
}

Result<std::unique_ptr<DiskManager>> DiskManager::OpenSim(
    SimEnv* env, const std::string& name) {
  auto dm = std::unique_ptr<DiskManager>(new DiskManager());
  dm->sim_ = env->GetFile(name);
  dm->page_count_ = static_cast<size_t>(dm->sim_->size()) / kPageSize;
  return dm;
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Status DiskManager::ReadRawLocked(PageId id, std::byte* out) {
  if (sim_ != nullptr) {
    return sim_->Read(static_cast<uint64_t>(id) * kPageSize, out, kPageSize);
  }
  if (file_ == nullptr) {
    std::memcpy(out, pages_[id].get(), kPageSize);
    return Status::Ok();
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::Internal("short read of page " + std::to_string(id));
  }
  return Status::Ok();
}

Status DiskManager::WriteRawLocked(PageId id, const std::byte* data,
                                   size_t n) {
  if (sim_ != nullptr) {
    return sim_->Write(static_cast<uint64_t>(id) * kPageSize, data, n);
  }
  if (file_ == nullptr) {
    std::memcpy(pages_[id].get(), data, n);
    return Status::Ok();
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(data, 1, n, file_) != n) {
    return Status::Internal("short write of page " + std::to_string(id));
  }
  return Status::Ok();
}

Result<PageId> DiskManager::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_count_ >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  PageId id = static_cast<PageId>(page_count_);
  std::byte zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  if (file_ == nullptr && sim_ == nullptr) {
    auto page = std::make_unique<std::byte[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    pages_.push_back(std::move(page));
  } else {
    CODES_RETURN_IF_ERROR(WriteRawLocked(id, zeros, kPageSize));
  }
  ++page_count_;
  return id;
}

Status DiskManager::EnsurePageCount(size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  std::byte zeros[kPageSize];
  std::memset(zeros, 0, kPageSize);
  while (page_count_ < count) {
    PageId id = static_cast<PageId>(page_count_);
    if (file_ == nullptr && sim_ == nullptr) {
      auto page = std::make_unique<std::byte[]>(kPageSize);
      std::memset(page.get(), 0, kPageSize);
      pages_.push_back(std::move(page));
    } else {
      CODES_RETURN_IF_ERROR(WriteRawLocked(id, zeros, kPageSize));
    }
    ++page_count_;
  }
  return Status::Ok();
}

Status DiskManager::ReadPage(PageId id, std::byte* out) {
  if (Failpoints::ShouldFail(FailpointSite::kStoragePageRead)) {
    return Failpoints::FailStatus(FailpointSite::kStoragePageRead);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= page_count_) {
    return Status::Internal("read of unallocated page " + std::to_string(id));
  }
  ++reads_;
  PageReadCounter().Increment();
  CODES_RETURN_IF_ERROR(ReadRawLocked(id, out));
  // Verify the physical header checksum. An all-zero page is an allocated
  // page that was never written — valid by definition (and a nonzero CRC
  // over zero payload means it cannot be confused with a stamped page).
  uint32_t stored = LoadU32(out + kPageChecksumOff);
  uint32_t actual =
      Crc32(out + kPageFlagsOff, kPageSize - kPageFlagsOff);
  if (stored != actual && !(stored == 0 && IsAllZero(out, kPageSize))) {
    ChecksumFailureCounter().Increment();
    return Status::DataLoss(
        "page " + std::to_string(id) + " checksum mismatch (stored " +
        std::to_string(stored) + ", computed " + std::to_string(actual) +
        "): torn write or corruption");
  }
  return Status::Ok();
}

Status DiskManager::WritePage(PageId id, const std::byte* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= page_count_) {
    return Status::Internal("write of unallocated page " +
                            std::to_string(id));
  }
  ++writes_;
  PageWriteCounter().Increment();
  // Stamp the checksum into a scratch image so the caller's buffer (a
  // buffer-pool frame) is never mutated here.
  std::byte stamped[kPageSize];
  std::memcpy(stamped, data, kPageSize);
  StoreU32(stamped + kPageChecksumOff,
           Crc32(stamped + kPageFlagsOff, kPageSize - kPageFlagsOff));
  if (Failpoints::ShouldFail(FailpointSite::kStorageTornWrite)) {
    // Persist only a prefix and report success: the lie every torn write
    // tells. The stale suffix fails checksum verification on read.
    CODES_RETURN_IF_ERROR(WriteRawLocked(id, stamped, kTornWriteBytes));
    return Status::Ok();
  }
  return WriteRawLocked(id, stamped, kPageSize);
}

Status DiskManager::Sync() {
  if (Failpoints::ShouldFail(FailpointSite::kStorageSync)) {
    return Failpoints::FailStatus(FailpointSite::kStorageSync);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (sim_ != nullptr) return sim_->Sync();
  if (file_ == nullptr) return Status::Ok();
  if (std::fflush(file_) != 0) {
    return Status::Internal("cannot flush database file");
  }
#ifndef _WIN32
  if (::fdatasync(::fileno(file_)) != 0) {
    return Status::Internal("fdatasync failed on database file");
  }
#endif
  return Status::Ok();
}

Status DiskManager::CorruptPageForTest(PageId id, size_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= page_count_ || offset >= kPageSize) {
    return Status::InvalidArgument("corruption target out of range");
  }
  std::byte page[kPageSize];
  CODES_RETURN_IF_ERROR(ReadRawLocked(id, page));
  page[offset] ^= std::byte{0xFF};
  return WriteRawLocked(id, page, kPageSize);
}

size_t DiskManager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

uint64_t DiskManager::read_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_;
}

uint64_t DiskManager::write_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

}  // namespace codes::storage
