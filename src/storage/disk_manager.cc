#include "storage/disk_manager.h"

#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace codes::storage {

namespace {

Counter& PageReadCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.page_reads");
  return c;
}

Counter& PageWriteCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.page_writes");
  return c;
}

}  // namespace

std::unique_ptr<DiskManager> DiskManager::CreateInMemory() {
  return std::unique_ptr<DiskManager>(new DiskManager());
}

Result<std::unique_ptr<DiskManager>> DiskManager::Create(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::Internal("cannot create database file: " + path);
  }
  auto dm = std::unique_ptr<DiskManager>(new DiskManager());
  dm->file_ = f;
  return dm;
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Status::NotFound("cannot open database file: " + path);
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::Internal("cannot size database file: " + path);
  }
  long size = std::ftell(f);
  if (size < 0 || size % static_cast<long>(kPageSize) != 0) {
    std::fclose(f);
    return Status::Internal("database file is not page-aligned: " + path);
  }
  auto dm = std::unique_ptr<DiskManager>(new DiskManager());
  dm->file_ = f;
  dm->page_count_ = static_cast<size_t>(size) / kPageSize;
  return dm;
}

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<PageId> DiskManager::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (page_count_ >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  PageId id = static_cast<PageId>(page_count_);
  if (file_ == nullptr) {
    auto page = std::make_unique<std::byte[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    pages_.push_back(std::move(page));
  } else {
    std::byte zeros[kPageSize];
    std::memset(zeros, 0, kPageSize);
    if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
        std::fwrite(zeros, 1, kPageSize, file_) != kPageSize) {
      return Status::Internal("cannot extend database file");
    }
  }
  ++page_count_;
  return id;
}

Status DiskManager::ReadPage(PageId id, std::byte* out) {
  if (Failpoints::ShouldFail(FailpointSite::kStoragePageRead)) {
    return Failpoints::FailStatus(FailpointSite::kStoragePageRead);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= page_count_) {
    return Status::Internal("read of unallocated page " + std::to_string(id));
  }
  ++reads_;
  PageReadCounter().Increment();
  if (file_ == nullptr) {
    std::memcpy(out, pages_[id].get(), kPageSize);
    return Status::Ok();
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::Internal("short read of page " + std::to_string(id));
  }
  return Status::Ok();
}

Status DiskManager::WritePage(PageId id, const std::byte* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= page_count_) {
    return Status::Internal("write of unallocated page " +
                            std::to_string(id));
  }
  ++writes_;
  PageWriteCounter().Increment();
  if (file_ == nullptr) {
    std::memcpy(pages_[id].get(), data, kPageSize);
    return Status::Ok();
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::Internal("short write of page " + std::to_string(id));
  }
  return Status::Ok();
}

Status DiskManager::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr && std::fflush(file_) != 0) {
    return Status::Internal("cannot flush database file");
  }
  return Status::Ok();
}

size_t DiskManager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

uint64_t DiskManager::read_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_;
}

uint64_t DiskManager::write_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

}  // namespace codes::storage
