#ifndef CODES_STORAGE_BUFFER_POOL_H_
#define CODES_STORAGE_BUFFER_POOL_H_

// Fixed-frame page cache between the access methods and the disk manager.
//
// Concurrency contract: all bookkeeping (page table, pin counts, LRU
// clock, dirty flags) is guarded by one mutex; page BYTES are read outside
// the lock while a PageGuard pin is held. That is race-free because a
// pinned frame is never chosen as an eviction victim, frame contents are
// written only while the filling thread holds the mutex (before the guard
// is handed out), and mutators run single-threaded by the storage engine's
// build-then-read lifecycle. The buffer-pool stress test runs this under
// TSan with concurrent readers.
//
// Eviction: least-recently-unpinned frame; a dirty victim is written back
// first (never dropped — write-back failure fails the fetch and leaves the
// victim resident). storage.evict injects write-back faults.
//
// WAL-before-data (no-steal): when a Wal is attached, a dirty frame whose
// latest mutation has not been logged AND group-flushed (frame LSN 0, or
// frame LSN > Wal::durable_lsn) is never an eviction victim — uncommitted
// bytes cannot reach the data file, which is what makes page-image redo
// records sufficient (no undo). CommitDirtyToWal is the logging half:
// it appends one page-image record per unlogged dirty frame and stamps
// the assigned LSN both into the frame bookkeeping and into the page's
// physical header.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace codes::storage {

class BufferPool;

/// RAII pin on one buffer-pool frame. Movable, not copyable; unpins on
/// destruction. An invalid (default/moved-from) guard has data()==nullptr.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept;
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  std::byte* data();
  const std::byte* data() const;
  PageId page_id() const { return page_id_; }
  bool valid() const { return pool_ != nullptr; }

  /// Marks the page as modified so eviction/flush writes it back.
  void MarkDirty();

  /// Unpins early (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageGuard(BufferPool* pool, int frame, PageId id)
      : pool_(pool), frame_(frame), page_id_(id) {}

  BufferPool* pool_ = nullptr;
  int frame_ = -1;
  PageId page_id_ = kInvalidPageId;
};

class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t num_frames);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  /// Pins page `id`, reading it from disk on a miss (evicting if needed).
  Result<PageGuard> Fetch(PageId id);

  /// Allocates a fresh zeroed page, pinned and already marked dirty.
  Result<PageGuard> NewPage();

  /// Writes every dirty resident page back to disk. With a Wal attached,
  /// unlogged dirty frames are skipped (writing them would break the
  /// WAL-before-data rule); callers that need a full flush commit first.
  Status FlushAll();

  /// Attaches the write-ahead log, switching eviction to no-steal.
  void AttachWal(Wal* wal);

  /// Appends a page-image redo record for every dirty frame whose latest
  /// mutation is unlogged, stamping the assigned LSN into the frame and
  /// into the page header bytes. The records are buffered in the Wal;
  /// the caller follows up with Wal::Sync() (group flush) to make them —
  /// and thereby the frames — durable and evictable.
  Status CommitDirtyToWal();

  size_t num_frames() const { return frames_.size(); }

  /// Frames with pin_count > 0 (stress tests assert this returns to 0).
  size_t pinned_frames() const;

  uint64_t hit_count() const;
  uint64_t miss_count() const;
  uint64_t eviction_count() const;

 private:
  friend class PageGuard;

  struct Frame {
    std::unique_ptr<std::byte[]> data;
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    uint64_t last_unpin = 0;  ///< LRU clock value at last pin drop
    Lsn lsn = 0;  ///< LSN of the frame's last logged image; 0 = unlogged
  };

  void Unpin(int frame);
  void SetDirty(int frame);
  /// Returns a pinnable frame: a free one, or the least-recently-unpinned
  /// evictable frame after write-back. Requires mu_ held.
  Result<int> AcquireFrameLocked();

  DiskManager* disk_;
  Wal* wal_ = nullptr;  ///< optional; non-null enables no-steal eviction
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
  std::vector<int> free_frames_;
  std::unordered_map<PageId, int> page_table_;
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_BUFFER_POOL_H_
