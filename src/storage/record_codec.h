#ifndef CODES_STORAGE_RECORD_CODEC_H_
#define CODES_STORAGE_RECORD_CODEC_H_

// Self-describing serialization of sql::Value rows and index keys. The
// codec round-trips values exactly (including the INTEGER/REAL type tag
// and raw text bytes), which is what makes the disk-backed backend
// byte-identical to the in-memory one.

#include <string>
#include <vector>

#include "common/status.h"
#include "sqlengine/value.h"

namespace codes::storage {

/// Appends one value: [tag u8][payload]. Tags: 0 NULL, 1 INTEGER (8B),
/// 2 REAL (8B IEEE bits), 3 TEXT (u32 length + bytes).
void AppendValue(const sql::Value& v, std::string* out);

/// Parses one value starting at `*pos`; advances `*pos` past it.
Status ParseValue(const std::string& buf, size_t* pos, sql::Value* out);
Status ParseValue(const char* data, size_t size, size_t* pos,
                  sql::Value* out);

/// Appends a row: [u16 arity][values...].
void AppendRow(const std::vector<sql::Value>& row, std::string* out);

/// Parses a row serialized by AppendRow from a raw byte range.
Status ParseRow(const char* data, size_t size, std::vector<sql::Value>* out);

/// Appends a length-prefixed string / fixed-width integers (catalog codec).
void AppendString(const std::string& s, std::string* out);
void AppendU32(uint32_t v, std::string* out);
void AppendU64(uint64_t v, std::string* out);
Status ParseString(const std::string& buf, size_t* pos, std::string* out);
Status ParseU32(const std::string& buf, size_t* pos, uint32_t* out);
Status ParseU64(const std::string& buf, size_t* pos, uint64_t* out);

}  // namespace codes::storage

#endif  // CODES_STORAGE_RECORD_CODEC_H_
