#ifndef CODES_STORAGE_WAL_H_
#define CODES_STORAGE_WAL_H_

// Write-ahead log with page-image redo records (DESIGN.md section 15).
//
// Record wire format (all integers host-order, like pages):
//
//   [u32 crc][u32 payload_len][u64 lsn][u8 type][u8 pad x3][u32 page]
//   [payload_len payload bytes]
//
// The 24-byte header's crc covers bytes [4, 24 + payload_len) — the whole
// record except the crc field itself. kPageImage records carry a full
// kPageSize page image (redo only: the buffer pool is no-steal, so an
// uncommitted page never reaches the data file and undo is unnecessary).
// kCommit marks every preceding image as committed; kCheckpoint marks the
// data file as a consistent materialization of everything before it.
//
// Durability: Append* writes buffer through the OS (or the crash sim's
// volatile region); Sync() is the group-flush barrier that makes every
// appended record durable at once and advances durable_lsn. The
// WAL-before-data rule lives in BufferPool: a dirty page may be written
// back only when its page LSN is <= durable_lsn.
//
// Torn tails: a crash can persist a prefix of an appended record. The
// recovery scan (ReadAll) stops at the first record whose header or crc
// does not verify and reports the remainder as a discarded torn tail;
// Open positions the append offset at the end of the valid prefix, so the
// torn bytes are overwritten by the next append.
//
// Threading: confined to the storage engine's single-mutator lifecycle
// (same contract as StorageDb mutation); no internal locks.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/crash_sim.h"
#include "storage/page.h"

namespace codes::storage {

enum class WalRecordType : uint8_t {
  kPageImage = 1,
  kCommit = 2,
  kCheckpoint = 3,
};

struct WalRecord {
  Lsn lsn = 0;
  WalRecordType type = WalRecordType::kPageImage;
  PageId page = kInvalidPageId;    ///< kPageImage only
  std::vector<std::byte> payload;  ///< page image for kPageImage
};

class Wal {
 public:
  /// Opens (creating if absent) the log at `path`, scanning it to position
  /// the append offset after the last valid record.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path);

  /// Same, over a simulated file (crash campaigns). `env` must outlive
  /// the Wal.
  static Result<std::unique_ptr<Wal>> OpenSim(SimEnv* env,
                                              const std::string& name);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends a redo record carrying the full image of `page` (kPageSize
  /// bytes). Buffered until Sync().
  Result<Lsn> AppendPageImage(PageId page, const std::byte* data);

  /// Appends a commit marker. Buffered until Sync().
  Result<Lsn> AppendCommit();

  /// Appends a checkpoint marker. Buffered until Sync().
  Result<Lsn> AppendCheckpoint();

  /// Group-flush durability barrier; on success every appended record is
  /// durable and durable_lsn catches up to the last appended LSN.
  /// Evaluates the storage.wal.sync failpoint.
  Status Sync();

  /// Discards the whole log (checkpoint protocol: the data file is synced
  /// first, making the log redundant). Durable immediately.
  Status Truncate();

  /// Full scan from the start for recovery.
  struct ScanResult {
    std::vector<WalRecord> records;  ///< valid records, in LSN order
    uint64_t torn_tail_records = 0;  ///< 1 when a torn/corrupt tail was cut
    uint64_t valid_bytes = 0;        ///< log prefix the records occupy
  };
  Result<ScanResult> ReadAll() const;

  Lsn durable_lsn() const { return durable_lsn_; }
  Lsn last_appended_lsn() const { return next_lsn_ - 1; }
  uint64_t size_bytes() const { return append_off_; }

 private:
  Wal() = default;

  Status WriteRaw(uint64_t off, const void* data, size_t n);
  Status ReadRaw(uint64_t off, void* out, size_t n) const;
  uint64_t FileSize() const;
  Status Init();  ///< scan to set append_off_ / next_lsn_ / durable_lsn_
  Result<Lsn> AppendRecord(WalRecordType type, PageId page,
                           const std::byte* payload, size_t payload_len);

  std::FILE* file_ = nullptr;  // file mode
  SimFile* sim_ = nullptr;     // sim mode (owned by the SimEnv)
  uint64_t append_off_ = 0;
  Lsn next_lsn_ = 1;
  Lsn durable_lsn_ = 0;
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_WAL_H_
