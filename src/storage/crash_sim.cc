#include "storage/crash_sim.h"

#include <algorithm>
#include <cstring>

namespace codes::storage {

const char* CrashVariantName(CrashVariant v) {
  switch (v) {
    case CrashVariant::kLostBuffer:
      return "lost_buffer";
    case CrashVariant::kEagerBuffer:
      return "eager_buffer";
    case CrashVariant::kTorn:
      return "torn";
  }
  return "unknown";
}

void CrashController::Arm(const CrashPlan& plan) {
  plan_ = plan;
  armed_ = true;
  crashed_ = false;
  recording_ = false;
  op_count_ = 0;
}

void CrashController::Disarm() {
  armed_ = false;
  crashed_ = false;
}

void CrashController::StartRecording() {
  recording_ = true;
  armed_ = false;
  crashed_ = false;
  op_count_ = 0;
  trace_.clear();
}

bool CrashController::OnOp(CrashOpRecord::Kind kind, uint64_t bytes) {
  uint64_t k = op_count_++;
  if (recording_) trace_.push_back(CrashOpRecord{kind, bytes});
  return armed_ && !crashed_ && k == plan_.crash_op;
}

Status SimFile::CheckAlive() const {
  if (ctrl_ != nullptr && ctrl_->crashed()) {
    return Status::Internal("simulated crash: I/O after power loss");
  }
  return Status::Ok();
}

void SimFile::ResolveForCrash(CrashVariant variant) {
  if (variant == CrashVariant::kLostBuffer) {
    merged_ = durable_;
  } else {
    durable_ = merged_;
  }
}

void SimFile::ApplyTornPrefix(uint64_t off, const void* data, size_t n) {
  if (n == 0) return;
  if (durable_.size() < off + n) durable_.resize(off + n);
  std::memcpy(durable_.data() + off, data, n);
  merged_ = durable_;
}

Status SimFile::Write(uint64_t off, const void* data, size_t n) {
  CODES_RETURN_IF_ERROR(CheckAlive());
  if (ctrl_ != nullptr && ctrl_->OnOp(CrashOpRecord::Kind::kWrite, n)) {
    const CrashPlan& plan = ctrl_->plan();
    for (SimFile* f : ctrl_->files_) f->ResolveForCrash(plan.variant);
    if (plan.variant == CrashVariant::kTorn) {
      ApplyTornPrefix(off, data, std::min(n, plan.torn_bytes));
    }
    ctrl_->crashed_ = true;
    return Status::Internal("simulated crash at write boundary " +
                            std::to_string(plan.crash_op));
  }
  if (merged_.size() < off + n) merged_.resize(off + n);
  std::memcpy(merged_.data() + off, data, n);
  return Status::Ok();
}

Status SimFile::Read(uint64_t off, void* out, size_t n) const {
  CODES_RETURN_IF_ERROR(CheckAlive());
  if (off + n > merged_.size()) {
    return Status::Internal("sim file short read");
  }
  std::memcpy(out, merged_.data() + off, n);
  return Status::Ok();
}

Status SimFile::Sync() {
  CODES_RETURN_IF_ERROR(CheckAlive());
  if (ctrl_ != nullptr && ctrl_->OnOp(CrashOpRecord::Kind::kSync, 0)) {
    // The crash pre-empts the barrier; the eager variants are equivalent
    // to crashing immediately after it.
    const CrashPlan& plan = ctrl_->plan();
    for (SimFile* f : ctrl_->files_) f->ResolveForCrash(plan.variant);
    ctrl_->crashed_ = true;
    return Status::Internal("simulated crash at sync boundary " +
                            std::to_string(plan.crash_op));
  }
  durable_ = merged_;
  return Status::Ok();
}

Status SimFile::Truncate(uint64_t new_size) {
  CODES_RETURN_IF_ERROR(CheckAlive());
  if (ctrl_ != nullptr && ctrl_->OnOp(CrashOpRecord::Kind::kTruncate, 0)) {
    const CrashPlan& plan = ctrl_->plan();
    for (SimFile* f : ctrl_->files_) f->ResolveForCrash(plan.variant);
    ctrl_->crashed_ = true;
    return Status::Internal("simulated crash at truncate boundary " +
                            std::to_string(plan.crash_op));
  }
  merged_.resize(new_size);
  return Status::Ok();
}

SimFile* SimEnv::GetFile(const std::string& name) {
  auto it = files_.find(name);
  if (it != files_.end()) return it->second.get();
  auto file = std::make_unique<SimFile>(&controller_);
  SimFile* raw = file.get();
  controller_.files_.push_back(raw);
  files_.emplace(name, std::move(file));
  return raw;
}

bool SimEnv::Exists(const std::string& name) const {
  return files_.count(name) != 0;
}

void SimEnv::Reboot() {
  controller_.armed_ = false;
  controller_.crashed_ = false;
  controller_.recording_ = false;
  for (auto& [name, file] : files_) {
    (void)name;
    file->merged_ = file->durable_;
  }
}

}  // namespace codes::storage
