#ifndef CODES_STORAGE_DISK_MANAGER_H_
#define CODES_STORAGE_DISK_MANAGER_H_

// Page-granular I/O under the buffer pool. Three modes share one API:
// file-backed (a real database file), in-memory (a vector of pages; powers
// the fuzz storage-differential oracle and most tests), and simulated
// (a crash_sim SimFile; powers the deterministic crash campaign).
//
// Every page carries a physical header (page.h): WritePage stamps a CRC-32
// over bytes [4, kPageSize) and ReadPage verifies it, so torn writes and
// bit rot surface as a typed kDataLoss status instead of garbage rows. An
// all-zero page is accepted as valid (allocated but never written).
// Failpoints: storage.page_read injects media read errors,
// storage.torn_write silently persists only a page prefix (the write
// reports success; the tear surfaces on a later read), storage.sync
// injects durability-barrier failures.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/crash_sim.h"
#include "storage/page.h"

namespace codes::storage {

class DiskManager {
 public:
  /// Pure in-memory page store (no file).
  static std::unique_ptr<DiskManager> CreateInMemory();

  /// Creates/truncates a database file.
  static Result<std::unique_ptr<DiskManager>> Create(const std::string& path);

  /// Opens an existing database file; page count comes from the file size.
  /// A trailing partial page (torn final-page write) is tolerated and
  /// ignored — recovery re-extends the file as the WAL dictates.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path);

  /// Creates/opens a simulated file in `env` (crash campaigns). The env
  /// must outlive the manager.
  static Result<std::unique_ptr<DiskManager>> OpenSim(SimEnv* env,
                                                      const std::string& name);

  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Appends one zeroed page and returns its id.
  Result<PageId> Allocate();

  /// Extends the file with zeroed pages until `count` pages exist. Used by
  /// recovery when the WAL references pages past a truncated data file.
  Status EnsurePageCount(size_t count);

  /// Reads page `id` into `out` (kPageSize bytes) and verifies its
  /// checksum; a mismatch returns kDataLoss.
  Status ReadPage(PageId id, std::byte* out);

  /// Stamps the checksum of `data` (kPageSize bytes) and writes it to page
  /// `id`. The caller's buffer is not modified.
  Status WritePage(PageId id, const std::byte* data);

  /// Durability barrier: fdatasync in file mode, durable promotion in sim
  /// mode, no-op in memory mode. Evaluates the storage.sync failpoint.
  Status Sync();

  /// Test-only fault injection: XOR-flips one stored byte of page `id`
  /// WITHOUT restamping the checksum, so the next ReadPage on it reports
  /// kDataLoss (unless the flip lands in the checksum field itself — pass
  /// an offset >= kPageHeaderBytes to corrupt payload). All three modes.
  Status CorruptPageForTest(PageId id, size_t offset);

  size_t page_count() const;
  bool in_memory() const { return file_ == nullptr && sim_ == nullptr; }

  /// Physical I/O counters (reads include failpoint-failed attempts).
  uint64_t read_count() const;
  uint64_t write_count() const;

 private:
  DiskManager() = default;

  Status ReadRawLocked(PageId id, std::byte* out);
  Status WriteRawLocked(PageId id, const std::byte* data, size_t n);

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;  // file mode
  SimFile* sim_ = nullptr;     // sim mode (owned by the SimEnv)
  std::vector<std::unique_ptr<std::byte[]>> pages_;  // memory mode storage
  size_t page_count_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_DISK_MANAGER_H_
