#ifndef CODES_STORAGE_DISK_MANAGER_H_
#define CODES_STORAGE_DISK_MANAGER_H_

// Page-granular I/O under the buffer pool. Two modes share one API:
// file-backed (a real database file) and in-memory (a vector of pages) —
// the latter powers the fuzz storage-differential oracle and most tests
// without touching the filesystem. Reads evaluate the storage.page_read
// failpoint, so chaos campaigns can inject media errors deterministically.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace codes::storage {

class DiskManager {
 public:
  /// Pure in-memory page store (no file).
  static std::unique_ptr<DiskManager> CreateInMemory();

  /// Creates/truncates a database file.
  static Result<std::unique_ptr<DiskManager>> Create(const std::string& path);

  /// Opens an existing database file; page count comes from the file size.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path);

  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Appends one zeroed page and returns its id.
  Result<PageId> Allocate();

  /// Reads page `id` into `out` (kPageSize bytes).
  Status ReadPage(PageId id, std::byte* out);

  /// Writes `data` (kPageSize bytes) to page `id`.
  Status WritePage(PageId id, const std::byte* data);

  /// Flushes buffered file writes to the OS. No-op in memory mode.
  Status Flush();

  size_t page_count() const;
  bool in_memory() const { return file_ == nullptr; }

  /// Physical I/O counters (reads include failpoint-failed attempts).
  uint64_t read_count() const;
  uint64_t write_count() const;

 private:
  DiskManager() = default;

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;             // null in memory mode
  std::vector<std::unique_ptr<std::byte[]>> pages_;  // memory mode storage
  size_t page_count_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_DISK_MANAGER_H_
