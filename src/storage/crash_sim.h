#ifndef CODES_STORAGE_CRASH_SIM_H_
#define CODES_STORAGE_CRASH_SIM_H_

// Deterministic crash simulation for the storage layer (DESIGN.md
// section 15). A SimEnv is a tiny simulated filesystem whose files track
// two byte images: the DURABLE image (what survives power loss) and the
// MERGED image (durable + OS-buffered writes). Write/Truncate mutate only
// the merged image; Sync promotes merged to durable — exactly the contract
// of a POSIX file with write-back caching.
//
// Every Write/Sync/Truncate across the whole environment is one numbered
// *crash boundary*. The CrashController can be armed to crash at boundary
// k; when that op arrives, the environment resolves every file according
// to the crash variant and all further I/O fails until Reboot():
//
//   kLostBuffer   unsynced writes vanish (merged reverts to durable)
//   kEagerBuffer  unsynced writes persist (the OS flushed them early);
//                 the crashing op itself does NOT happen
//   kTorn         like kEagerBuffer, plus a prefix of the crashing write
//                 is persisted — the classic torn page/record
//
// The three variants bracket real hardware: any actual power loss leaves
// each file somewhere between kLostBuffer and kTorn. A storage engine that
// recovers correctly from all three at every boundary is prefix-consistent
// under arbitrary write-back caching.
//
// Threading: a SimEnv models one single-threaded process; campaigns get
// parallelism by giving each crash case its own SimEnv. No internal locks.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace codes::storage {

class SimFile;

enum class CrashVariant : int {
  kLostBuffer = 0,
  kEagerBuffer = 1,
  kTorn = 2,
};

const char* CrashVariantName(CrashVariant v);

/// Where and how to crash. `crash_op` is the 0-based boundary index; the
/// crash fires *instead of* that operation.
struct CrashPlan {
  uint64_t crash_op = UINT64_MAX;
  CrashVariant variant = CrashVariant::kLostBuffer;
  /// kTorn: bytes of the crashing write that reach the durable image
  /// (clamped to the write size).
  size_t torn_bytes = 0;
};

/// One recorded crash boundary from a counting (unarmed) run.
struct CrashOpRecord {
  enum class Kind : uint8_t { kWrite = 0, kSync = 1, kTruncate = 2 };
  Kind kind = Kind::kWrite;
  uint64_t bytes = 0;  ///< write size; 0 for sync/truncate
};

class CrashController {
 public:
  /// Arms a crash plan (op counter restarts at 0).
  void Arm(const CrashPlan& plan);
  void Disarm();

  /// Starts recording one CrashOpRecord per boundary (op counter restarts
  /// at 0). Used by campaigns to enumerate boundaries before armed runs.
  void StartRecording();
  const std::vector<CrashOpRecord>& trace() const { return trace_; }

  uint64_t op_count() const { return op_count_; }
  bool crashed() const { return crashed_; }
  const CrashPlan& plan() const { return plan_; }

 private:
  friend class SimFile;
  friend class SimEnv;

  /// Registers `op` as the next boundary; true when it is the crash point.
  bool OnOp(CrashOpRecord::Kind kind, uint64_t bytes);

  std::vector<SimFile*> files_;
  CrashPlan plan_;
  bool armed_ = false;
  bool crashed_ = false;
  bool recording_ = false;
  uint64_t op_count_ = 0;
  std::vector<CrashOpRecord> trace_;
};

/// One simulated file. Obtain via SimEnv::GetFile.
class SimFile {
 public:
  explicit SimFile(CrashController* ctrl) : ctrl_(ctrl) {}
  SimFile(const SimFile&) = delete;
  SimFile& operator=(const SimFile&) = delete;

  /// Writes `n` bytes at `off` into the merged image, zero-extending any
  /// gap. Crash boundary.
  Status Write(uint64_t off, const void* data, size_t n);

  /// Reads `n` bytes at `off` from the merged image; fails on short read.
  Status Read(uint64_t off, void* out, size_t n) const;

  /// Promotes the merged image to durable. Crash boundary.
  Status Sync();

  /// Shrinks/extends the merged image. Crash boundary.
  Status Truncate(uint64_t new_size);

  uint64_t size() const { return merged_.size(); }
  uint64_t durable_size() const { return durable_.size(); }

 private:
  friend class CrashController;
  friend class SimEnv;

  Status CheckAlive() const;
  /// Applies `variant` at crash time: kLostBuffer reverts merged to
  /// durable; the eager variants promote merged to durable.
  void ResolveForCrash(CrashVariant variant);
  /// kTorn only: persists the prefix of the crashing write.
  void ApplyTornPrefix(uint64_t off, const void* data, size_t n);

  CrashController* ctrl_;
  std::vector<std::byte> durable_;
  std::vector<std::byte> merged_;
};

/// A named collection of SimFiles sharing one crash controller, plus the
/// reboot lifecycle. Files spring into (empty) existence on first access,
/// like O_CREAT.
class SimEnv {
 public:
  SimEnv() = default;
  SimEnv(const SimEnv&) = delete;
  SimEnv& operator=(const SimEnv&) = delete;

  CrashController& controller() { return controller_; }

  /// Returns the named file, creating an empty one if absent.
  SimFile* GetFile(const std::string& name);

  bool Exists(const std::string& name) const;

  /// Post-crash "power cycle": clears the crashed flag, disarms the
  /// controller, and resets every file's merged image to its durable one
  /// (a rebooted OS has no dirty page cache). Safe to call when no crash
  /// happened (volatile state is then deliberately dropped, simulating a
  /// clean power-off without sync).
  void Reboot();

 private:
  CrashController controller_;
  std::map<std::string, std::unique_ptr<SimFile>> files_;
};

}  // namespace codes::storage

#endif  // CODES_STORAGE_CRASH_SIM_H_
