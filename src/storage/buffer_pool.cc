#include "storage/buffer_pool.h"

#include <cstring>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace codes::storage {

namespace {

Counter& HitCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("storage.bp.hit");
  return c;
}
Counter& MissCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter("storage.bp.miss");
  return c;
}
Counter& EvictionCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.bp.evictions");
  return c;
}

}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_ = o.frame_;
    page_id_ = o.page_id_;
    o.pool_ = nullptr;
    o.frame_ = -1;
    o.page_id_ = kInvalidPageId;
  }
  return *this;
}

std::byte* PageGuard::data() {
  return pool_ != nullptr ? pool_->frames_[frame_].data.get() : nullptr;
}

const std::byte* PageGuard::data() const {
  return pool_ != nullptr ? pool_->frames_[frame_].data.get() : nullptr;
}

void PageGuard::MarkDirty() {
  if (pool_ != nullptr) pool_->SetDirty(frame_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
    page_id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames) : disk_(disk) {
  if (num_frames == 0) num_frames = 1;
  frames_.resize(num_frames);
  free_frames_.reserve(num_frames);
  for (size_t i = 0; i < num_frames; ++i) {
    frames_[i].data = std::make_unique<std::byte[]>(kPageSize);
    free_frames_.push_back(static_cast<int>(num_frames - 1 - i));
  }
}

BufferPool::~BufferPool() {
  // Best-effort write-back so a dropped pool does not lose dirty pages in
  // file mode; errors are unreportable here and the explicit FlushAll path
  // is what correctness-sensitive callers use.
  (void)FlushAll();
}

Result<int> BufferPool::AcquireFrameLocked() {
  if (!free_frames_.empty()) {
    int frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  int victim = -1;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.pin_count > 0) continue;
    // No-steal: an unlogged (or logged-but-unflushed) dirty frame holds
    // uncommitted bytes; writing it to the data file would require undo
    // logging. It simply cannot be a victim until the next commit.
    if (wal_ != nullptr && f.dirty &&
        (f.lsn == 0 || f.lsn > wal_->durable_lsn())) {
      continue;
    }
    if (victim < 0 || f.last_unpin < frames_[victim].last_unpin) {
      victim = static_cast<int>(i);
    }
  }
  if (victim < 0) {
    return Status::ResourceExhausted(
        wal_ != nullptr
            ? "buffer pool: all frames pinned or dirty-uncommitted "
              "(batch touches more pages than the pool holds)"
            : "buffer pool: all frames pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    if (Failpoints::ShouldFail(FailpointSite::kStorageEvict)) {
      return Failpoints::FailStatus(FailpointSite::kStorageEvict);
    }
    CODES_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
    f.dirty = false;
  }
  page_table_.erase(f.id);
  f.id = kInvalidPageId;
  f.lsn = 0;
  ++evictions_;
  EvictionCounter().Increment();
  return victim;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    HitCounter().Increment();
    Frame& f = frames_[it->second];
    ++f.pin_count;
    return PageGuard(this, it->second, id);
  }
  ++misses_;
  MissCounter().Increment();
  CODES_ASSIGN_OR_RETURN(int frame, AcquireFrameLocked());
  Frame& f = frames_[frame];
  Status read = disk_->ReadPage(id, f.data.get());
  if (!read.ok()) {
    free_frames_.push_back(frame);
    return read;
  }
  f.id = id;
  f.pin_count = 1;
  f.dirty = false;
  // A clean page read from disk carries its last logged LSN in the
  // header; should it be re-dirtied, SetDirty resets this to 0.
  f.lsn = LoadU64(f.data.get() + kPageLsnOff);
  page_table_[id] = frame;
  return PageGuard(this, frame, id);
}

Result<PageGuard> BufferPool::NewPage() {
  std::lock_guard<std::mutex> lock(mu_);
  CODES_ASSIGN_OR_RETURN(PageId id, disk_->Allocate());
  auto acquired = AcquireFrameLocked();
  if (!acquired.ok()) {
    // The allocated page stays zeroed on disk; it is simply not resident.
    return acquired.status();
  }
  int frame = *acquired;
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  f.id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.lsn = 0;
  page_table_[id] = frame;
  return PageGuard(this, frame, id);
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Frame& f : frames_) {
    if (f.id == kInvalidPageId || !f.dirty) continue;
    if (wal_ != nullptr && (f.lsn == 0 || f.lsn > wal_->durable_lsn())) {
      // Uncommitted frame: flushing it would violate WAL-before-data.
      continue;
    }
    CODES_RETURN_IF_ERROR(disk_->WritePage(f.id, f.data.get()));
    f.dirty = false;
  }
  return Status::Ok();
}

void BufferPool::AttachWal(Wal* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = wal;
}

Status BufferPool::CommitDirtyToWal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (wal_ == nullptr) {
    return Status::Internal("CommitDirtyToWal without an attached WAL");
  }
  for (Frame& f : frames_) {
    if (f.id == kInvalidPageId || !f.dirty || f.lsn != 0) continue;
    // Stamp the (known-next) LSN into the page header BEFORE appending,
    // so the logged image carries its own LSN and a page read back after
    // replay reports the record that produced it. The checksum field is
    // left alone — WritePage stamps it at write-back time.
    Lsn lsn = wal_->last_appended_lsn() + 1;
    StoreU64(f.data.get() + kPageLsnOff, lsn);
    CODES_ASSIGN_OR_RETURN(Lsn got, wal_->AppendPageImage(f.id, f.data.get()));
    CODES_CHECK(got == lsn);
    f.lsn = lsn;
  }
  return Status::Ok();
}

void BufferPool::Unpin(int frame) {
  std::lock_guard<std::mutex> lock(mu_);
  Frame& f = frames_[frame];
  if (f.pin_count > 0 && --f.pin_count == 0) {
    f.last_unpin = ++clock_;
  }
}

void BufferPool::SetDirty(int frame) {
  std::lock_guard<std::mutex> lock(mu_);
  frames_[frame].dirty = true;
  // Re-dirtying invalidates any previously logged image of this page: the
  // frame must be re-logged before it is evictable again (no-steal).
  frames_[frame].lsn = 0;
}

size_t BufferPool::pinned_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count > 0) ++n;
  }
  return n;
}

uint64_t BufferPool::hit_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t BufferPool::miss_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t BufferPool::eviction_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace codes::storage
