#ifndef CODES_STORAGE_CRASH_HARNESS_H_
#define CODES_STORAGE_CRASH_HARNESS_H_

// Deterministic crash-recovery campaign (DESIGN.md section 15).
//
// The harness builds a WAL-enabled StorageDb inside a SimEnv, runs a
// deterministic mixed insert/index workload once while RECORDING every
// write/sync/truncate boundary, then re-runs the workload once per
// (boundary, crash variant) pair with the CrashController armed at that
// boundary. After each simulated power loss it reboots the environment,
// reopens the database (which runs redo recovery), and differentially
// checks the recovered state against a pure-function oracle:
//
//   * the recovered row count must sit exactly on a batch boundary c, and
//     c must lie in the prefix-consistency window {j, j+1} where j is the
//     number of batches whose commit had fully completed before the crash
//     boundary (the +1 covers eager-buffer crashes inside a commit whose
//     WAL records all reached the durable image);
//   * the full content digest — sequential scan, three index range scans,
//     a point lookup, and the primary-key index stats — must be byte-for-
//     byte the oracle digest for prefix c, computed without any storage
//     code from the deterministic row generator.
//
// Campaign outcomes fold into one FNV digest in case order; the digest is
// independent of the thread count (each case owns a private SimEnv and the
// result slot vector is pre-assigned), which the codes_crash tool's
// --selfcheck mode pins.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/crash_sim.h"

namespace codes::storage {

struct CrashCampaignConfig {
  uint64_t seed = 1;
  /// Mutation batches appended (and committed) after the bulk load.
  int batches = 40;
  int rows_per_batch = 3;
  /// Rows bulk-loaded before the WAL workload starts.
  int initial_rows = 8;
  /// Checkpoint after every N batches; 0 = never checkpoint.
  int checkpoint_every = 7;
  /// Deliberately small so the workload evicts under WAL pressure.
  size_t pool_frames = 16;
  int threads = 1;
  /// Also crash mid-write with a half-persisted (torn) page/record.
  bool torn_variants = true;
  /// Cap on enumerated cases (deterministic stride sample); 0 = all.
  uint64_t max_cases = 0;
};

struct CrashCaseOutcome {
  uint64_t crash_op = 0;
  CrashVariant variant = CrashVariant::kLostBuffer;
  /// Batches surviving recovery; -1 when the case failed.
  int recovered_batches = -1;
  /// Empty when the case passed.
  std::string error;
};

struct CrashCampaignResult {
  /// Write/sync/truncate boundaries in the crash-free workload run.
  uint64_t boundaries = 0;
  uint64_t cases_run = 0;
  uint64_t cases_dropped = 0;  ///< sampled away by max_cases
  uint64_t failures = 0;
  /// FNV-1a over per-case outcome lines in enumeration order.
  uint64_t digest = 0;
  /// storage.recovery.* counter deltas across the campaign; the tool and
  /// CI assert replayed + discarded == wal_records_seen.
  uint64_t recovery_runs = 0;
  uint64_t wal_records_seen = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t wal_records_discarded = 0;
  /// First few failing cases, for diagnostics.
  std::vector<CrashCaseOutcome> failed;
};

/// Runs the full campaign: every boundary x every applicable variant.
Result<CrashCampaignResult> RunCrashCampaign(const CrashCampaignConfig& config);

/// Replays a single crash case (corpus regression path): crash at boundary
/// `crash_op` with `variant`, recover, differential-check. kTorn derives
/// its torn prefix from the recorded write size, like the campaign.
Result<CrashCaseOutcome> RunCrashCase(const CrashCampaignConfig& config,
                                      uint64_t crash_op, CrashVariant variant);

}  // namespace codes::storage

#endif  // CODES_STORAGE_CRASH_HARNESS_H_
