#include "storage/record_codec.h"

#include <cstring>

namespace codes::storage {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInteger = 1;
constexpr uint8_t kTagReal = 2;
constexpr uint8_t kTagText = 3;

void AppendRaw(const void* data, size_t size, std::string* out) {
  out->append(static_cast<const char*>(data), size);
}

Status Truncated() { return Status::Internal("truncated record"); }

}  // namespace

void AppendValue(const sql::Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back(static_cast<char>(kTagNull));
  } else if (v.is_integer()) {
    out->push_back(static_cast<char>(kTagInteger));
    int64_t raw = v.AsInteger();
    AppendRaw(&raw, 8, out);
  } else if (v.is_real()) {
    out->push_back(static_cast<char>(kTagReal));
    double raw = v.AsReal();
    AppendRaw(&raw, 8, out);
  } else {
    out->push_back(static_cast<char>(kTagText));
    const std::string& text = v.AsText();
    uint32_t len = static_cast<uint32_t>(text.size());
    AppendRaw(&len, 4, out);
    out->append(text);
  }
}

Status ParseValue(const char* data, size_t size, size_t* pos,
                  sql::Value* out) {
  if (*pos >= size) return Truncated();
  uint8_t tag = static_cast<uint8_t>(data[(*pos)++]);
  switch (tag) {
    case kTagNull:
      *out = sql::Value();
      return Status::Ok();
    case kTagInteger: {
      if (*pos + 8 > size) return Truncated();
      int64_t raw;
      std::memcpy(&raw, data + *pos, 8);
      *pos += 8;
      *out = sql::Value(raw);
      return Status::Ok();
    }
    case kTagReal: {
      if (*pos + 8 > size) return Truncated();
      double raw;
      std::memcpy(&raw, data + *pos, 8);
      *pos += 8;
      *out = sql::Value(raw);
      return Status::Ok();
    }
    case kTagText: {
      if (*pos + 4 > size) return Truncated();
      uint32_t len;
      std::memcpy(&len, data + *pos, 4);
      *pos += 4;
      if (*pos + len > size) return Truncated();
      *out = sql::Value(std::string(data + *pos, len));
      *pos += len;
      return Status::Ok();
    }
    default:
      return Status::Internal("unknown value tag " + std::to_string(tag));
  }
}

Status ParseValue(const std::string& buf, size_t* pos, sql::Value* out) {
  return ParseValue(buf.data(), buf.size(), pos, out);
}

void AppendRow(const std::vector<sql::Value>& row, std::string* out) {
  uint16_t arity = static_cast<uint16_t>(row.size());
  AppendRaw(&arity, 2, out);
  for (const auto& v : row) AppendValue(v, out);
}

Status ParseRow(const char* data, size_t size,
                std::vector<sql::Value>* out) {
  if (size < 2) return Truncated();
  uint16_t arity;
  std::memcpy(&arity, data, 2);
  size_t pos = 2;
  out->clear();
  out->reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    sql::Value v;
    CODES_RETURN_IF_ERROR(ParseValue(data, size, &pos, &v));
    out->push_back(std::move(v));
  }
  return Status::Ok();
}

void AppendString(const std::string& s, std::string* out) {
  AppendU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

void AppendU32(uint32_t v, std::string* out) { AppendRaw(&v, 4, out); }

void AppendU64(uint64_t v, std::string* out) { AppendRaw(&v, 8, out); }

Status ParseString(const std::string& buf, size_t* pos, std::string* out) {
  uint32_t len;
  CODES_RETURN_IF_ERROR(ParseU32(buf, pos, &len));
  if (*pos + len > buf.size()) return Truncated();
  out->assign(buf, *pos, len);
  *pos += len;
  return Status::Ok();
}

Status ParseU32(const std::string& buf, size_t* pos, uint32_t* out) {
  if (*pos + 4 > buf.size()) return Truncated();
  std::memcpy(out, buf.data() + *pos, 4);
  *pos += 4;
  return Status::Ok();
}

Status ParseU64(const std::string& buf, size_t* pos, uint64_t* out) {
  if (*pos + 8 > buf.size()) return Truncated();
  std::memcpy(out, buf.data() + *pos, 8);
  *pos += 8;
  return Status::Ok();
}

}  // namespace codes::storage
