#include "storage/storage_db.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "storage/record_codec.h"

namespace codes::storage {

namespace {

// Catalog chain layout (offsets relative to the end of the physical page
// header, page.h). Page 0:
//   [u32 magic][u32 next_page][u32 chunk_len][chunk bytes]
// Continuation pages:
//   [u32 next_page][u32 chunk_len][chunk bytes]
constexpr uint32_t kCatalogMagic = 0x53444331;  // "1CDS"
constexpr PageId kCatalogPageId = 0;
constexpr size_t kHeadHeaderBytes = 12;
constexpr size_t kContHeaderBytes = 8;

Counter& RecoveryRunsCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.recovery.runs");
  return c;
}
Counter& RecoverySeenCounter() {
  static Counter& c = MetricsRegistry::Global().GetCounter(
      "storage.recovery.wal_records_seen");
  return c;
}
Counter& RecoveryReplayedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.recovery.replayed");
  return c;
}
Counter& RecoveryDiscardedCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.recovery.discarded");
  return c;
}
Counter& CheckpointCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.checkpoints");
  return c;
}
Counter& CommitCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.wal.commits");
  return c;
}

uint32_t ValueClassToU32(sql::ColumnIndexStats::ValueClass vc) {
  return static_cast<uint32_t>(vc);
}

Result<sql::ColumnIndexStats::ValueClass> ValueClassFromU32(uint32_t raw) {
  using VC = sql::ColumnIndexStats::ValueClass;
  switch (raw) {
    case 0: return VC::kEmpty;
    case 1: return VC::kNumeric;
    case 2: return VC::kText;
    case 3: return VC::kMixed;
    default: return Status::Internal("corrupt catalog: value class");
  }
}

/// Folds one column value into the running index stats: value-class
/// lattice (empty -> numeric/text -> mixed), min/max, non-NULL count.
/// NaN reals are classified kMixed outright — NaN breaks Value::Compare's
/// total order, so such columns are never indexed.
void ObserveValue(const sql::Value& v, sql::ColumnIndexStats* st) {
  using VC = sql::ColumnIndexStats::ValueClass;
  if (v.is_null()) return;
  VC cls = VC::kMixed;
  if (v.is_numeric()) {
    cls = (v.is_real() && std::isnan(v.AsReal())) ? VC::kMixed : VC::kNumeric;
  } else if (v.is_text()) {
    cls = VC::kText;
  }
  if (st->value_class == VC::kEmpty) {
    st->value_class = cls;
  } else if (st->value_class != cls) {
    st->value_class = VC::kMixed;
  }
  if (st->value_class == VC::kMixed) return;
  if (st->entries == 0) {
    st->min_value = v;
    st->max_value = v;
  } else {
    if (v.Compare(st->min_value) < 0) st->min_value = v;
    if (v.Compare(st->max_value) > 0) st->max_value = v;
  }
  ++st->entries;
}

Result<bool> HasDuplicateKeys(const BPlusTree& tree) {
  CODES_ASSIGN_OR_RETURN(BPlusTree::Iterator it, tree.SeekFirst());
  bool have_prev = false;
  sql::Value prev;
  while (it.Valid()) {
    if (have_prev && prev.Compare(it.key()) == 0) return true;
    prev = it.key();
    have_prev = true;
    CODES_RETURN_IF_ERROR(it.Advance());
  }
  return false;
}

uint64_t IndexKey(int table, int column) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(table)) << 32) |
         static_cast<uint32_t>(column);
}

/// Cursor that reports one terminal error (bad table index, failed range
/// collection) through the RowCursor error channel.
class ErrorCursor final : public sql::RowCursor {
 public:
  explicit ErrorCursor(Status status) : status_(std::move(status)) {}
  bool Next(sql::Row*) override { return false; }
  Status status() const override { return status_; }

 private:
  Status status_;
};

/// Index-scan cursor: fetches heap rows for a pre-collected, pre-sorted
/// RID list. Sorting the RIDs is what restores insertion order (the heap
/// is append-only, so RIDs are monotone with insertion order) and keeps
/// IndexScan's output a pure subsequence of Scan's.
class RidFetchCursor final : public sql::RowCursor {
 public:
  RidFetchCursor(const TableHeap* heap, std::vector<Rid> rids)
      : heap_(heap), rids_(std::move(rids)) {}

  bool Next(sql::Row* out) override {
    if (!status_.ok() || pos_ >= rids_.size()) return false;
    Status fetched = heap_->Fetch(rids_[pos_], out);
    if (!fetched.ok()) {
      status_ = fetched;
      return false;
    }
    ++pos_;
    return true;
  }
  Status status() const override { return status_; }

 private:
  const TableHeap* heap_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
  Status status_ = Status::Ok();
};

}  // namespace

Result<std::unique_ptr<StorageDb>> StorageDb::CreateFrom(
    const sql::ExecSource& src, std::unique_ptr<DiskManager> disk,
    size_t pool_frames) {
  if (disk == nullptr) {
    return Status::InvalidArgument("null disk manager");
  }
  if (disk->page_count() != 0) {
    return Status::InvalidArgument("CreateFrom requires an empty database");
  }
  std::unique_ptr<StorageDb> db(new StorageDb);
  db->disk_ = std::move(disk);
  db->pool_ = std::make_unique<BufferPool>(db->disk_.get(), pool_frames);
  db->schema_ = src.schema();

  {
    // Reserve page 0 for the catalog head before any heap/index pages.
    CODES_ASSIGN_OR_RETURN(PageGuard head, db->pool_->NewPage());
    if (head.page_id() != kCatalogPageId) {
      return Status::Internal("catalog head not at page 0");
    }
  }

  using VC = sql::ColumnIndexStats::ValueClass;
  const int num_tables = static_cast<int>(db->schema_.tables.size());
  for (int t = 0; t < num_tables; ++t) {
    CODES_ASSIGN_OR_RETURN(TableHeap heap, TableHeap::Create(db->pool_.get()));
    const auto& cols = db->schema_.tables[t].columns;
    const size_t width = cols.size();
    std::vector<std::vector<std::pair<sql::Value, Rid>>> col_entries(width);
    std::vector<sql::ColumnIndexStats> col_stats(width);

    std::unique_ptr<sql::RowCursor> cursor = src.Scan(t);
    sql::Row row;
    while (cursor->Next(&row)) {
      if (row.size() != width) {
        return Status::Internal("row arity does not match schema");
      }
      CODES_ASSIGN_OR_RETURN(Rid rid, heap.Append(row));
      for (size_t c = 0; c < width; ++c) {
        ObserveValue(row[c], &col_stats[c]);
        if (!row[c].is_null()) col_entries[c].emplace_back(row[c], rid);
      }
    }
    CODES_RETURN_IF_ERROR(cursor->status());
    db->tables_.push_back(TableInfo{heap});

    for (size_t c = 0; c < width; ++c) {
      if (col_stats[c].value_class == VC::kMixed) continue;  // unindexable
      IndexInfo info;
      info.table = static_cast<uint32_t>(t);
      info.column = static_cast<uint32_t>(c);
      info.stats = col_stats[c];
      if (!col_entries[c].empty()) {
        BPlusTree tree(db->pool_.get());
        bool abandoned = false;
        for (const auto& [value, rid] : col_entries[c]) {
          Status inserted = tree.Insert(value, rid);
          if (inserted.code() == StatusCode::kInvalidArgument) {
            abandoned = true;  // oversized key: skip this index entirely
            break;
          }
          CODES_RETURN_IF_ERROR(inserted);
        }
        if (abandoned) continue;
        info.root = tree.root();
        if (cols[c].is_primary_key) {
          CODES_ASSIGN_OR_RETURN(bool dups, HasDuplicateKeys(tree));
          info.stats.unique = !dups;
        }
      }
      db->index_lookup_[IndexKey(t, static_cast<int>(c))] =
          db->indexes_.size();
      db->indexes_.push_back(std::move(info));
    }
  }

  CODES_RETURN_IF_ERROR(db->WriteCatalog());
  CODES_RETURN_IF_ERROR(db->Flush());
  return db;
}

Result<std::unique_ptr<StorageDb>> StorageDb::CreateInMemoryFrom(
    const sql::ExecSource& src, size_t pool_frames) {
  return CreateFrom(src, DiskManager::CreateInMemory(), pool_frames);
}

Result<std::unique_ptr<StorageDb>> StorageDb::CreateSimFrom(
    const sql::ExecSource& src, SimEnv* env, const std::string& name,
    size_t pool_frames) {
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                         DiskManager::OpenSim(env, name));
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<StorageDb> db,
                         CreateFrom(src, std::move(disk), pool_frames));
  // CreateFrom flushed and synced, so an empty WAL is consistent; the
  // checkpoint below stamps that fact into the log.
  CODES_ASSIGN_OR_RETURN(db->wal_, Wal::OpenSim(env, name + ".wal"));
  if (db->wal_->size_bytes() != 0) {
    return Status::InvalidArgument("CreateSimFrom over a non-empty WAL");
  }
  db->pool_->AttachWal(db->wal_.get());
  CODES_ASSIGN_OR_RETURN(Lsn lsn, db->wal_->AppendCheckpoint());
  (void)lsn;
  CODES_RETURN_IF_ERROR(db->wal_->Sync());
  return db;
}

Result<std::unique_ptr<StorageDb>> StorageDb::Open(const std::string& path,
                                                   size_t pool_frames) {
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                         DiskManager::Open(path));
  if (disk->page_count() == 0) {
    return Status::InvalidArgument("database file has no catalog page");
  }
  std::unique_ptr<StorageDb> db(new StorageDb);
  db->disk_ = std::move(disk);
  db->pool_ = std::make_unique<BufferPool>(db->disk_.get(), pool_frames);
  CODES_RETURN_IF_ERROR(db->ReadCatalog());
  return db;
}

Status StorageDb::Recover(DiskManager* disk, Wal* wal) {
  CODES_TRACE_SPAN(span, "storage.recovery.replay");
  RecoveryRunsCounter().Increment();
  CODES_ASSIGN_OR_RETURN(Wal::ScanResult scan, wal->ReadAll());
  const uint64_t seen = scan.records.size() + scan.torn_tail_records;
  RecoverySeenCounter().Increment(seen);

  // The committed prefix ends at the last commit/checkpoint marker; page
  // images after it belong to a batch whose commit never became durable.
  size_t end = 0;  // one past the last marker
  for (size_t i = 0; i < scan.records.size(); ++i) {
    if (scan.records[i].type == WalRecordType::kCommit ||
        scan.records[i].type == WalRecordType::kCheckpoint) {
      end = i + 1;
    }
  }
  uint64_t replayed = 0;
  for (size_t i = 0; i < end; ++i) {
    const WalRecord& rec = scan.records[i];
    if (rec.type == WalRecordType::kPageImage) {
      if (rec.payload.size() != kPageSize) {
        return Status::DataLoss("WAL page image of wrong size");
      }
      CODES_RETURN_IF_ERROR(
          disk->EnsurePageCount(static_cast<size_t>(rec.page) + 1));
      CODES_RETURN_IF_ERROR(disk->WritePage(rec.page, rec.payload.data()));
    }
    ++replayed;
  }
  const uint64_t discarded =
      (scan.records.size() - end) + scan.torn_tail_records;
  RecoveryReplayedCounter().Increment(replayed);
  RecoveryDiscardedCounter().Increment(discarded);

  // Materialize the recovered state and reset the log so a crash during
  // (or right after) recovery re-runs it from an equally valid prefix —
  // replay is idempotent page-image overwriting either way.
  CODES_RETURN_IF_ERROR(disk->Sync());
  CODES_RETURN_IF_ERROR(wal->Truncate());
  CODES_ASSIGN_OR_RETURN(Lsn lsn, wal->AppendCheckpoint());
  (void)lsn;
  CODES_RETURN_IF_ERROR(wal->Sync());
  CheckpointCounter().Increment();
  return Status::Ok();
}

Result<std::unique_ptr<StorageDb>> StorageDb::OpenWithWalImpl(
    std::unique_ptr<DiskManager> disk, std::unique_ptr<Wal> wal,
    size_t pool_frames) {
  CODES_RETURN_IF_ERROR(Recover(disk.get(), wal.get()));
  if (disk->page_count() == 0) {
    return Status::InvalidArgument("database file has no catalog page");
  }
  std::unique_ptr<StorageDb> db(new StorageDb);
  db->disk_ = std::move(disk);
  db->wal_ = std::move(wal);
  db->pool_ = std::make_unique<BufferPool>(db->disk_.get(), pool_frames);
  db->pool_->AttachWal(db->wal_.get());
  CODES_RETURN_IF_ERROR(db->ReadCatalog());
  return db;
}

Result<std::unique_ptr<StorageDb>> StorageDb::OpenWithWal(
    const std::string& path, const std::string& wal_path,
    size_t pool_frames) {
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                         DiskManager::Open(path));
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal, Wal::Open(wal_path));
  return OpenWithWalImpl(std::move(disk), std::move(wal), pool_frames);
}

Result<std::unique_ptr<StorageDb>> StorageDb::OpenSim(SimEnv* env,
                                                      const std::string& name,
                                                      size_t pool_frames) {
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<DiskManager> disk,
                         DiskManager::OpenSim(env, name));
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                         Wal::OpenSim(env, name + ".wal"));
  return OpenWithWalImpl(std::move(disk), std::move(wal), pool_frames);
}

Status StorageDb::EnableWal(const std::string& wal_path) {
  if (wal_ != nullptr) {
    return Status::InvalidArgument("WAL already attached");
  }
  CODES_RETURN_IF_ERROR(Flush());
  CODES_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal, Wal::Open(wal_path));
  if (wal->size_bytes() != 0) {
    return Status::InvalidArgument(
        "EnableWal over a non-empty log; use OpenWithWal to recover it");
  }
  wal_ = std::move(wal);
  pool_->AttachWal(wal_.get());
  CODES_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendCheckpoint());
  (void)lsn;
  return wal_->Sync();
}

Status StorageDb::Flush() {
  CODES_RETURN_IF_ERROR(pool_->FlushAll());
  return disk_->Sync();
}

Status StorageDb::AppendRows(int table_index,
                             const std::vector<sql::Row>& rows) {
  if (table_index < 0 || table_index >= static_cast<int>(tables_.size())) {
    return Status::InvalidArgument("AppendRows: table index out of range");
  }
  using VC = sql::ColumnIndexStats::ValueClass;
  TableHeap& heap = tables_[table_index].heap;
  const size_t width = schema_.tables[table_index].columns.size();
  for (const sql::Row& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument("AppendRows: row arity mismatch");
    }
    CODES_ASSIGN_OR_RETURN(Rid rid, heap.Append(row));
    for (size_t c = 0; c < width; ++c) {
      auto it = index_lookup_.find(IndexKey(table_index, static_cast<int>(c)));
      if (it == index_lookup_.end()) continue;
      size_t position = it->second;
      IndexInfo& info = indexes_[position];
      ObserveValue(row[c], &info.stats);
      if (info.stats.value_class == VC::kMixed) {
        // The column no longer has a total order the tree can maintain.
        DropIndex(position);
        continue;
      }
      if (row[c].is_null()) continue;
      BPlusTree tree(pool_.get(), info.root);
      if (info.stats.unique && info.root != kInvalidPageId) {
        // A single equal-key probe keeps the uniqueness bit honest
        // without a full-index rescan per batch.
        CODES_ASSIGN_OR_RETURN(BPlusTree::Iterator probe, tree.Seek(row[c]));
        if (probe.Valid() && probe.key().Compare(row[c]) == 0) {
          info.stats.unique = false;
        }
      }
      Status inserted = tree.Insert(row[c], rid);
      if (inserted.code() == StatusCode::kInvalidArgument) {
        DropIndex(position);  // oversized key: abandon, like CreateFrom
        continue;
      }
      CODES_RETURN_IF_ERROR(inserted);
      info.root = tree.root();
    }
  }
  return Status::Ok();
}

Status StorageDb::CommitBatch() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("CommitBatch without a WAL");
  }
  CODES_TRACE_SPAN(span, "storage.wal.commit");
  // Catalog first so its dirty pages are part of the same logged batch.
  CODES_RETURN_IF_ERROR(WriteCatalog());
  CODES_RETURN_IF_ERROR(pool_->CommitDirtyToWal());
  CODES_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendCommit());
  (void)lsn;
  CODES_RETURN_IF_ERROR(wal_->Sync());
  CommitCounter().Increment();
  return Status::Ok();
}

Status StorageDb::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("Checkpoint without a WAL");
  }
  CODES_TRACE_SPAN(span, "storage.checkpoint");
  CODES_RETURN_IF_ERROR(CommitBatch());
  CODES_RETURN_IF_ERROR(pool_->FlushAll());
  CODES_RETURN_IF_ERROR(disk_->Sync());
  CODES_RETURN_IF_ERROR(wal_->Truncate());
  CODES_ASSIGN_OR_RETURN(Lsn lsn, wal_->AppendCheckpoint());
  (void)lsn;
  CODES_RETURN_IF_ERROR(wal_->Sync());
  CheckpointCounter().Increment();
  return Status::Ok();
}

size_t StorageDb::SourceRowCount(int table_index) const {
  if (table_index < 0 || table_index >= static_cast<int>(tables_.size())) {
    return 0;
  }
  return tables_[table_index].heap.row_count();
}

std::unique_ptr<sql::RowCursor> StorageDb::Scan(int table_index) const {
  if (table_index < 0 || table_index >= static_cast<int>(tables_.size())) {
    return std::make_unique<ErrorCursor>(
        Status::Internal("table index out of range"));
  }
  return tables_[table_index].heap.Scan();
}

const StorageDb::IndexInfo* StorageDb::FindIndex(int table_index,
                                                 int column_index) const {
  auto it = index_lookup_.find(IndexKey(table_index, column_index));
  if (it == index_lookup_.end()) return nullptr;
  return &indexes_[it->second];
}

void StorageDb::DropIndex(size_t position) {
  // The tree's pages are abandoned (no free list); the catalog rewrite at
  // the next commit makes the drop durable.
  indexes_.erase(indexes_.begin() + static_cast<ptrdiff_t>(position));
  index_lookup_.clear();
  for (size_t i = 0; i < indexes_.size(); ++i) {
    index_lookup_[IndexKey(static_cast<int>(indexes_[i].table),
                           static_cast<int>(indexes_[i].column))] = i;
  }
}

bool StorageDb::IndexStats(int table_index, int column_index,
                           sql::ColumnIndexStats* out) const {
  if (!index_scans_enabled()) return false;
  const IndexInfo* idx = FindIndex(table_index, column_index);
  if (idx == nullptr) return false;
  *out = idx->stats;
  return true;
}

std::unique_ptr<sql::RowCursor> StorageDb::IndexScan(
    int table_index, int column_index, const sql::IndexBound& lo,
    const sql::IndexBound& hi) const {
  if (!index_scans_enabled()) return nullptr;
  if (table_index < 0 || table_index >= static_cast<int>(tables_.size())) {
    return nullptr;
  }
  const IndexInfo* idx = FindIndex(table_index, column_index);
  if (idx == nullptr) return nullptr;
  std::vector<Rid> rids;
  if (idx->root != kInvalidPageId) {
    BPlusTree tree(pool_.get(), idx->root);
    Status collected = tree.CollectRange(lo, hi, &rids);
    if (!collected.ok()) {
      return std::make_unique<ErrorCursor>(collected);
    }
  }
  std::sort(rids.begin(), rids.end());  // key order -> insertion order
  return std::make_unique<RidFetchCursor>(&tables_[table_index].heap,
                                          std::move(rids));
}

Result<std::vector<sql::Row>> StorageDb::Materialize(int table_index) const {
  std::vector<sql::Row> rows;
  std::unique_ptr<sql::RowCursor> cursor = Scan(table_index);
  sql::Row row;
  while (cursor->Next(&row)) rows.push_back(std::move(row));
  CODES_RETURN_IF_ERROR(cursor->status());
  return rows;
}

std::string StorageDb::SerializeCatalog() const {
  std::string blob;
  AppendString(schema_.name, &blob);
  AppendU32(static_cast<uint32_t>(schema_.tables.size()), &blob);
  for (const auto& table : schema_.tables) {
    AppendString(table.name, &blob);
    AppendString(table.comment, &blob);
    AppendU32(static_cast<uint32_t>(table.columns.size()), &blob);
    for (const auto& col : table.columns) {
      AppendString(col.name, &blob);
      AppendU32(static_cast<uint32_t>(col.type), &blob);
      AppendString(col.comment, &blob);
      AppendU32(col.is_primary_key ? 1 : 0, &blob);
    }
  }
  AppendU32(static_cast<uint32_t>(schema_.foreign_keys.size()), &blob);
  for (const auto& fk : schema_.foreign_keys) {
    AppendString(fk.table, &blob);
    AppendString(fk.column, &blob);
    AppendString(fk.ref_table, &blob);
    AppendString(fk.ref_column, &blob);
  }
  for (const auto& table : tables_) {
    AppendU32(table.heap.first_page(), &blob);
    AppendU32(table.heap.last_page(), &blob);
    AppendU64(table.heap.row_count(), &blob);
  }
  AppendU32(static_cast<uint32_t>(indexes_.size()), &blob);
  for (const auto& idx : indexes_) {
    AppendU32(idx.table, &blob);
    AppendU32(idx.column, &blob);
    AppendU32(idx.root, &blob);
    AppendU64(idx.stats.entries, &blob);
    AppendU32(ValueClassToU32(idx.stats.value_class), &blob);
    AppendU32(idx.stats.unique ? 1 : 0, &blob);
    AppendValue(idx.stats.min_value, &blob);
    AppendValue(idx.stats.max_value, &blob);
  }
  return blob;
}

Status StorageDb::ParseCatalog(const std::string& blob) {
  size_t pos = 0;
  CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &schema_.name));
  uint32_t num_tables = 0;
  CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &num_tables));
  schema_.tables.resize(num_tables);
  for (auto& table : schema_.tables) {
    CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &table.name));
    CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &table.comment));
    uint32_t num_cols = 0;
    CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &num_cols));
    table.columns.resize(num_cols);
    for (auto& col : table.columns) {
      CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &col.name));
      uint32_t type = 0;
      CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &type));
      if (type > static_cast<uint32_t>(sql::DataType::kText)) {
        return Status::Internal("corrupt catalog: column type");
      }
      col.type = static_cast<sql::DataType>(type);
      CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &col.comment));
      uint32_t pk = 0;
      CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &pk));
      col.is_primary_key = pk != 0;
    }
  }
  uint32_t num_fks = 0;
  CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &num_fks));
  schema_.foreign_keys.resize(num_fks);
  for (auto& fk : schema_.foreign_keys) {
    CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &fk.table));
    CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &fk.column));
    CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &fk.ref_table));
    CODES_RETURN_IF_ERROR(ParseString(blob, &pos, &fk.ref_column));
  }
  tables_.clear();
  tables_.reserve(num_tables);
  for (uint32_t t = 0; t < num_tables; ++t) {
    uint32_t first = kInvalidPageId;
    uint32_t last = kInvalidPageId;
    uint64_t rows = 0;
    CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &first));
    CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &last));
    CODES_RETURN_IF_ERROR(ParseU64(blob, &pos, &rows));
    tables_.push_back(TableInfo{TableHeap(pool_.get(), first, last, rows)});
  }
  uint32_t num_indexes = 0;
  CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &num_indexes));
  indexes_.clear();
  index_lookup_.clear();
  indexes_.reserve(num_indexes);
  for (uint32_t i = 0; i < num_indexes; ++i) {
    IndexInfo info;
    CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &info.table));
    CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &info.column));
    CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &info.root));
    CODES_RETURN_IF_ERROR(ParseU64(blob, &pos, &info.stats.entries));
    uint32_t vc = 0;
    CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &vc));
    CODES_ASSIGN_OR_RETURN(info.stats.value_class, ValueClassFromU32(vc));
    uint32_t unique = 0;
    CODES_RETURN_IF_ERROR(ParseU32(blob, &pos, &unique));
    info.stats.unique = unique != 0;
    CODES_RETURN_IF_ERROR(ParseValue(blob, &pos, &info.stats.min_value));
    CODES_RETURN_IF_ERROR(ParseValue(blob, &pos, &info.stats.max_value));
    if (info.table >= num_tables ||
        info.column >= schema_.tables[info.table].columns.size()) {
      return Status::Internal("corrupt catalog: index target");
    }
    index_lookup_[IndexKey(static_cast<int>(info.table),
                           static_cast<int>(info.column))] = indexes_.size();
    indexes_.push_back(std::move(info));
  }
  return Status::Ok();
}

Status StorageDb::WriteCatalog() {
  const std::string blob = SerializeCatalog();
  size_t pos = 0;
  PageId current = kCatalogPageId;
  bool first = true;
  for (;;) {
    const size_t header = first ? kHeadHeaderBytes : kContHeaderBytes;
    const size_t capacity = kPageSize - kPageHeaderBytes - header;
    const size_t chunk = std::min(capacity, blob.size() - pos);
    const bool more = pos + chunk < blob.size();
    PageId next = kInvalidPageId;
    if (more) {
      CODES_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
      next = fresh.page_id();
    }
    CODES_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(current));
    std::byte* p = guard.data() + kPageHeaderBytes;
    size_t off = 0;
    if (first) {
      StoreU32(p + off, kCatalogMagic);
      off += 4;
    }
    StoreU32(p + off, next);
    StoreU32(p + off + 4, static_cast<uint32_t>(chunk));
    std::memcpy(p + off + 8, blob.data() + pos, chunk);
    guard.MarkDirty();
    pos += chunk;
    if (!more) break;
    current = next;
    first = false;
  }
  return Status::Ok();
}

Status StorageDb::ReadCatalog() {
  std::string blob;
  PageId current = kCatalogPageId;
  bool first = true;
  // Page-count bound makes a corrupt next-pointer cycle terminate.
  for (size_t hops = 0; hops <= disk_->page_count(); ++hops) {
    CODES_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(current));
    const std::byte* p = guard.data() + kPageHeaderBytes;
    size_t off = 0;
    if (first) {
      if (LoadU32(p) != kCatalogMagic) {
        return Status::InvalidArgument("not a codes database file");
      }
      off = 4;
    }
    PageId next = LoadU32(p + off);
    uint32_t len = LoadU32(p + off + 4);
    if (len > kPageSize - kPageHeaderBytes - off - 8) {
      return Status::Internal("corrupt catalog: chunk length");
    }
    blob.append(reinterpret_cast<const char*>(p + off + 8), len);
    if (next == kInvalidPageId) {
      return ParseCatalog(blob);
    }
    current = next;
    first = false;
  }
  return Status::Internal("corrupt catalog: page cycle");
}

}  // namespace codes::storage
