#include "storage/table_heap.h"

#include <cstring>

#include "storage/record_codec.h"

namespace codes::storage {

namespace {

// The heap header sits just past the physical page header (checksum/LSN,
// page.h); all stored offsets are absolute page offsets, so the payload
// region still grows down from kPageSize.
constexpr size_t kHeaderBytes = 8;      // slot_count, payload_start, next
constexpr size_t kSlotBytes = 4;        // offset, length
constexpr size_t kSlotCountOff = kPageHeaderBytes + 0;
constexpr size_t kPayloadStartOff = kPageHeaderBytes + 2;
constexpr size_t kNextPageOff = kPageHeaderBytes + 4;
constexpr size_t kSlotDirOff = kPageHeaderBytes + kHeaderBytes;

uint16_t SlotCount(const std::byte* page) {
  return LoadU16(page + kSlotCountOff);
}
uint16_t PayloadStart(const std::byte* page) {
  return LoadU16(page + kPayloadStartOff);
}
PageId NextPage(const std::byte* page) { return LoadU32(page + kNextPageOff); }

void InitPage(std::byte* page) {
  StoreU16(page + kSlotCountOff, 0);
  // payload_start == 0 encodes kPageSize (payload region empty): u16
  // cannot represent 8192 itself, and 0 is never a valid payload offset
  // because the header occupies the front of the page.
  StoreU16(page + kPayloadStartOff, 0);
  StoreU32(page + kNextPageOff, kInvalidPageId);
}

/// Decoded payload_start: 0 means "kPageSize" (empty page).
size_t PayloadStartDecoded(const std::byte* page) {
  uint16_t raw = PayloadStart(page);
  return raw == 0 ? kPageSize : raw;
}

size_t FreeBytes(const std::byte* page) {
  size_t slots_end = kSlotDirOff + SlotCount(page) * kSlotBytes;
  return PayloadStartDecoded(page) - slots_end;
}

}  // namespace

Result<TableHeap> TableHeap::Create(BufferPool* pool) {
  CODES_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPage());
  InitPage(guard.data());
  guard.MarkDirty();
  TableHeap heap(pool, guard.page_id(), guard.page_id(), 0);
  return heap;
}

TableHeap::TableHeap(BufferPool* pool, PageId first_page, PageId last_page,
                     uint64_t row_count)
    : pool_(pool),
      first_page_(first_page),
      last_page_(last_page),
      row_count_(row_count) {}

size_t TableHeap::MaxRecordBytes() {
  return kPageSize - kSlotDirOff - kSlotBytes;
}

Result<Rid> TableHeap::Append(const std::vector<sql::Value>& row) {
  std::string record;
  AppendRow(row, &record);
  if (record.size() > MaxRecordBytes()) {
    return Status::ResourceExhausted(
        "row of " + std::to_string(record.size()) +
        " bytes exceeds page capacity");
  }
  CODES_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(last_page_));
  if (FreeBytes(guard.data()) < record.size() + kSlotBytes) {
    // Tail page full: chain a fresh page.
    CODES_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPage());
    InitPage(fresh.data());
    fresh.MarkDirty();
    StoreU32(guard.data() + kNextPageOff, fresh.page_id());
    guard.MarkDirty();
    last_page_ = fresh.page_id();
    guard = std::move(fresh);
  }
  std::byte* page = guard.data();
  uint16_t slot = SlotCount(page);
  size_t payload_start = PayloadStartDecoded(page) - record.size();
  std::memcpy(page + payload_start, record.data(), record.size());
  StoreU16(page + kSlotDirOff + slot * kSlotBytes,
           static_cast<uint16_t>(payload_start));
  StoreU16(page + kSlotDirOff + slot * kSlotBytes + 2,
           static_cast<uint16_t>(record.size()));
  StoreU16(page + kSlotCountOff, static_cast<uint16_t>(slot + 1));
  StoreU16(page + kPayloadStartOff, static_cast<uint16_t>(
                                        payload_start == kPageSize
                                            ? 0
                                            : payload_start));
  guard.MarkDirty();
  ++row_count_;
  return Rid{guard.page_id(), slot};
}

Status TableHeap::Fetch(const Rid& rid, std::vector<sql::Value>* out) const {
  CODES_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(rid.page));
  const std::byte* page = guard.data();
  if (rid.slot >= SlotCount(page)) {
    return Status::Internal("RID slot out of range");
  }
  const std::byte* slot = page + kSlotDirOff + rid.slot * kSlotBytes;
  uint16_t offset = LoadU16(slot);
  uint16_t length = LoadU16(slot + 2);
  if (offset + length > kPageSize) {
    return Status::Internal("corrupt slot entry");
  }
  return ParseRow(reinterpret_cast<const char*>(page + offset), length, out);
}

TableHeap::Cursor::Cursor(BufferPool* pool, PageId first_page)
    : pool_(pool), page_id_(first_page) {}

bool TableHeap::Cursor::Next(sql::Row* out) {
  while (!done_) {
    if (!guard_.valid()) {
      if (page_id_ == kInvalidPageId) {
        done_ = true;
        return false;
      }
      auto fetched = pool_->Fetch(page_id_);
      if (!fetched.ok()) {
        status_ = fetched.status();
        done_ = true;
        return false;
      }
      guard_ = std::move(*fetched);
      slot_ = 0;
    }
    const std::byte* page = guard_.data();
    if (slot_ >= SlotCount(page)) {
      page_id_ = NextPage(page);
      guard_.Release();
      continue;
    }
    const std::byte* slot = page + kSlotDirOff + slot_ * kSlotBytes;
    uint16_t offset = LoadU16(slot);
    uint16_t length = LoadU16(slot + 2);
    ++slot_;
    Status parsed = ParseRow(reinterpret_cast<const char*>(page + offset),
                             length, out);
    if (!parsed.ok()) {
      status_ = parsed;
      done_ = true;
      return false;
    }
    return true;
  }
  return false;
}

std::unique_ptr<sql::RowCursor> TableHeap::Scan() const {
  return std::make_unique<Cursor>(pool_, first_page_);
}

}  // namespace codes::storage
