#include "storage/crash_harness.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "sqlengine/database.h"
#include "sqlengine/exec_source.h"
#include "sqlengine/value.h"
#include "storage/storage_db.h"

namespace codes::storage {

namespace {

constexpr const char* kDbFile = "crash.db";
constexpr size_t kMaxReportedFailures = 16;

/// FNV-1a; the campaign digest and the per-state content digests.
struct Digest {
  uint64_t value = 1469598103934665603ULL;
  void Add(const std::string& s) {
    for (char c : s) {
      value ^= static_cast<unsigned char>(c);
      value *= 1099511628211ULL;
    }
  }
};

uint64_t CounterValue(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name).Value();
}

// --- deterministic workload -------------------------------------------
//
// One table `events(id INTEGER PK, grp INTEGER, label TEXT)`. Row i is a
// pure function of (seed, i); ids are a scattered permutation slice of
// [0, 1000003) (48271 is coprime with the prime 1000003, so distinct i
// give distinct ids), which keeps B+ tree splits happening all over the
// key space instead of only at the right edge.

int64_t IdAt(const CrashCampaignConfig& cfg, size_t i) {
  return static_cast<int64_t>(((i + 1 + cfg.seed % 997) * 48271ULL) %
                              1000003ULL);
}

sql::Row RowAt(const CrashCampaignConfig& cfg, size_t i) {
  int64_t id = IdAt(cfg, i);
  sql::Row row;
  row.push_back(sql::Value(id));
  row.push_back(sql::Value(static_cast<int64_t>(i % 17)));
  row.push_back(sql::Value("ev-" + std::to_string(id % 997)));
  return row;
}

sql::Database MakeSourceDb(const CrashCampaignConfig& cfg) {
  sql::DatabaseSchema schema;
  schema.name = "crashdb";
  sql::TableDef table;
  table.name = "events";
  table.columns.push_back({"id", sql::DataType::kInteger, "", true});
  table.columns.push_back({"grp", sql::DataType::kInteger, "", false});
  table.columns.push_back({"label", sql::DataType::kText, "", false});
  schema.tables.push_back(std::move(table));
  sql::Database db(std::move(schema));
  for (int i = 0; i < cfg.initial_rows; ++i) {
    Status inserted = db.Insert("events", RowAt(cfg, static_cast<size_t>(i)));
    CODES_CHECK(inserted.ok());
  }
  return db;
}

size_t TotalRows(const CrashCampaignConfig& cfg, int batches) {
  return static_cast<size_t>(cfg.initial_rows) +
         static_cast<size_t>(batches) * cfg.rows_per_batch;
}

/// Runs the mutation workload: `cfg.batches` append+commit batches with
/// periodic checkpoints. When recording, captures the boundary count after
/// each fully committed batch (the prefix-consistency pivot).
Status RunBatches(StorageDb* db, const CrashCampaignConfig& cfg,
                  const CrashController* ctrl,
                  std::vector<uint64_t>* ops_after_batch) {
  for (int b = 0; b < cfg.batches; ++b) {
    std::vector<sql::Row> rows;
    rows.reserve(cfg.rows_per_batch);
    for (int r = 0; r < cfg.rows_per_batch; ++r) {
      size_t i = static_cast<size_t>(cfg.initial_rows) +
                 static_cast<size_t>(b) * cfg.rows_per_batch + r;
      rows.push_back(RowAt(cfg, i));
    }
    CODES_RETURN_IF_ERROR(db->AppendRows(0, rows));
    CODES_RETURN_IF_ERROR(db->CommitBatch());
    if (cfg.checkpoint_every > 0 && (b + 1) % cfg.checkpoint_every == 0) {
      CODES_RETURN_IF_ERROR(db->Checkpoint());
    }
    if (ops_after_batch != nullptr) {
      ops_after_batch->push_back(ctrl->op_count());
    }
  }
  return Status::Ok();
}

// --- content digests ---------------------------------------------------
//
// A recovered state and its oracle fold the same labelled sections:
// sequential scan, index range scans over the PK (plus a point lookup),
// and the PK index stats. The oracle side never touches storage code.

struct RangeSpec {
  bool lo_bounded = false;
  int64_t lo = 0;
  bool lo_inclusive = true;
  bool hi_bounded = false;
  int64_t hi = 0;
  bool hi_inclusive = true;
};

std::vector<RangeSpec> MakeRanges(const CrashCampaignConfig& cfg) {
  return {
      {true, 0, true, true, 200000, true},
      {true, 200000, false, true, 600000, true},
      {true, 600000, true, false, 0, true},
      // Point lookup on the very first row's id.
      {true, IdAt(cfg, 0), true, true, IdAt(cfg, 0), true},
  };
}

bool InRange(int64_t id, const RangeSpec& r) {
  if (r.lo_bounded && (r.lo_inclusive ? id < r.lo : id <= r.lo)) return false;
  if (r.hi_bounded && (r.hi_inclusive ? id > r.hi : id >= r.hi)) return false;
  return true;
}

void FoldRow(Digest* d, const sql::Row& row) {
  for (const sql::Value& v : row) {
    d->Add(v.is_null() ? "N" : v.is_integer() ? "I" : v.is_real() ? "R" : "T");
    d->Add(v.ToString());
    d->Add(";");
  }
  d->Add("\n");
}

/// Oracle digest of the state after `batches` committed batches, computed
/// purely from the row generator.
uint64_t ExpectedStateDigest(const CrashCampaignConfig& cfg, int batches) {
  Digest d;
  size_t n = TotalRows(cfg, batches);
  d.Add("seq\n");
  for (size_t i = 0; i < n; ++i) FoldRow(&d, RowAt(cfg, i));
  std::vector<RangeSpec> ranges = MakeRanges(cfg);
  for (size_t r = 0; r < ranges.size(); ++r) {
    d.Add("range" + std::to_string(r) + "\n");
    for (size_t i = 0; i < n; ++i) {
      if (InRange(IdAt(cfg, i), ranges[r])) FoldRow(&d, RowAt(cfg, i));
    }
  }
  d.Add("stats\n");
  d.Add(std::to_string(n));
  d.Add(" u1\n");
  return d.value;
}

/// Engine-side digest of a (recovered) database, same sections as the
/// oracle. Returns 0 and sets `*err` on any access failure.
uint64_t ActualStateDigest(const StorageDb& db, const CrashCampaignConfig& cfg,
                           std::string* err) {
  Digest d;
  d.Add("seq\n");
  Result<std::vector<sql::Row>> rows = db.Materialize(0);
  if (!rows.ok()) {
    *err = "materialize: " + rows.status().message();
    return 0;
  }
  for (const sql::Row& row : *rows) FoldRow(&d, row);
  std::vector<RangeSpec> ranges = MakeRanges(cfg);
  for (size_t r = 0; r < ranges.size(); ++r) {
    d.Add("range" + std::to_string(r) + "\n");
    const RangeSpec& spec = ranges[r];
    sql::Value lo(spec.lo);
    sql::Value hi(spec.hi);
    sql::IndexBound lo_bound{spec.lo_bounded ? &lo : nullptr,
                             spec.lo_inclusive};
    sql::IndexBound hi_bound{spec.hi_bounded ? &hi : nullptr,
                             spec.hi_inclusive};
    std::unique_ptr<sql::RowCursor> cursor =
        db.IndexScan(0, 0, lo_bound, hi_bound);
    sql::Row row;
    while (cursor->Next(&row)) FoldRow(&d, row);
    if (!cursor->status().ok()) {
      *err = "index scan: " + cursor->status().message();
      return 0;
    }
  }
  d.Add("stats\n");
  sql::ColumnIndexStats stats;
  if (!db.IndexStats(0, 0, &stats)) {
    *err = "primary-key index missing after recovery";
    return 0;
  }
  d.Add(std::to_string(stats.entries));
  d.Add(stats.unique ? " u1\n" : " u0\n");
  return d.value;
}

// --- campaign machinery ------------------------------------------------

/// Shared read-only inputs of every crash case: the recorded boundary
/// trace, the per-batch commit pivots, and the oracle digest per prefix.
struct CampaignContext {
  std::vector<CrashOpRecord> trace;
  std::vector<uint64_t> ops_after_batch;
  std::vector<uint64_t> expected;  ///< digest for c committed batches
};

/// Recording pass: runs the workload crash-free, captures boundaries, and
/// cross-checks the oracle against the engine at full depth (an oracle
/// bug must fail loudly here, not as a thousand bogus case failures).
Result<CampaignContext> PrepareContext(const CrashCampaignConfig& cfg) {
  if (cfg.batches <= 0 || cfg.rows_per_batch <= 0 || cfg.initial_rows < 0) {
    return Status::InvalidArgument("crash campaign: non-positive workload");
  }
  CampaignContext ctx;
  ctx.expected.reserve(cfg.batches + 1);
  for (int c = 0; c <= cfg.batches; ++c) {
    ctx.expected.push_back(ExpectedStateDigest(cfg, c));
  }
  SimEnv env;
  sql::Database src = MakeSourceDb(cfg);
  CODES_ASSIGN_OR_RETURN(
      std::unique_ptr<StorageDb> db,
      StorageDb::CreateSimFrom(src, &env, kDbFile, cfg.pool_frames));
  env.controller().StartRecording();
  CODES_RETURN_IF_ERROR(
      RunBatches(db.get(), cfg, &env.controller(), &ctx.ops_after_batch));
  ctx.trace = env.controller().trace();
  std::string err;
  uint64_t actual = ActualStateDigest(*db, cfg, &err);
  if (!err.empty()) {
    return Status::Internal("crash-free run: " + err);
  }
  if (actual != ctx.expected[cfg.batches]) {
    return Status::Internal(
        "crash-free run digest disagrees with the oracle — harness bug");
  }
  return ctx;
}

/// One armed run: build, crash at `plan`, reboot, recover, check.
CrashCaseOutcome RunOneCase(const CrashCampaignConfig& cfg,
                            const CrashPlan& plan,
                            const CampaignContext& ctx) {
  CrashCaseOutcome out;
  out.crash_op = plan.crash_op;
  out.variant = plan.variant;

  SimEnv env;
  sql::Database src = MakeSourceDb(cfg);
  bool crash_fired = false;
  {
    Result<std::unique_ptr<StorageDb>> built =
        StorageDb::CreateSimFrom(src, &env, kDbFile, cfg.pool_frames);
    if (!built.ok()) {
      out.error = "build: " + built.status().message();
      return out;
    }
    std::unique_ptr<StorageDb> db = std::move(*built);
    env.controller().Arm(plan);
    Status run = RunBatches(db.get(), cfg, nullptr, nullptr);
    crash_fired = env.controller().crashed();
    if (!run.ok() && !crash_fired) {
      out.error = "workload failed without a simulated crash: " +
                  run.message();
      return out;
    }
    // db destructs here; post-crash its best-effort write-back is refused
    // by the sim layer, exactly like a process that already lost power.
  }
  env.Reboot();

  Result<std::unique_ptr<StorageDb>> reopened =
      StorageDb::OpenSim(&env, kDbFile, cfg.pool_frames);
  if (!reopened.ok()) {
    out.error = "recovery failed: " + reopened.status().message();
    return out;
  }
  const StorageDb& db = **reopened;

  size_t count = db.SourceRowCount(0);
  size_t base = static_cast<size_t>(cfg.initial_rows);
  if (count < base || (count - base) % cfg.rows_per_batch != 0) {
    out.error = "recovered row count " + std::to_string(count) +
                " is not on a batch boundary";
    return out;
  }
  int c = static_cast<int>((count - base) / cfg.rows_per_batch);
  if (c > cfg.batches) {
    out.error = "recovered " + std::to_string(c) + " batches, ran only " +
                std::to_string(cfg.batches);
    return out;
  }

  // Prefix-consistency window: every batch whose commit fully preceded
  // the crash boundary is guaranteed; at most the one in-flight batch may
  // additionally survive (eager variants with a durable commit record).
  if (crash_fired) {
    int j = 0;
    while (j < static_cast<int>(ctx.ops_after_batch.size()) &&
           ctx.ops_after_batch[j] <= plan.crash_op) {
      ++j;
    }
    if (c != j && c != j + 1) {
      out.error = "recovered " + std::to_string(c) +
                  " batches outside the window {" + std::to_string(j) + ", " +
                  std::to_string(j + 1) + "}";
      return out;
    }
  } else if (c != cfg.batches) {
    out.error = "crash-free case lost batches: " + std::to_string(c);
    return out;
  }

  std::string err;
  uint64_t actual = ActualStateDigest(db, cfg, &err);
  if (!err.empty()) {
    out.error = err;
    return out;
  }
  if (actual != ctx.expected[c]) {
    out.error = "content digest mismatch at prefix " + std::to_string(c);
    return out;
  }
  out.recovered_batches = c;
  return out;
}

std::vector<CrashPlan> EnumerateCases(const CrashCampaignConfig& cfg,
                                      const CampaignContext& ctx) {
  std::vector<CrashPlan> cases;
  for (uint64_t k = 0; k < ctx.trace.size(); ++k) {
    cases.push_back({k, CrashVariant::kLostBuffer, 0});
    cases.push_back({k, CrashVariant::kEagerBuffer, 0});
    if (cfg.torn_variants &&
        ctx.trace[k].kind == CrashOpRecord::Kind::kWrite &&
        ctx.trace[k].bytes >= 2) {
      cases.push_back({k, CrashVariant::kTorn,
                       static_cast<size_t>(ctx.trace[k].bytes / 2)});
    }
  }
  return cases;
}

}  // namespace

Result<CrashCampaignResult> RunCrashCampaign(const CrashCampaignConfig& cfg) {
  CODES_ASSIGN_OR_RETURN(CampaignContext ctx, PrepareContext(cfg));

  std::vector<CrashPlan> cases = EnumerateCases(cfg, ctx);
  CrashCampaignResult result;
  result.boundaries = ctx.trace.size();
  if (cfg.max_cases > 0 && cases.size() > cfg.max_cases) {
    // Deterministic stride sample keeps coverage spread over the whole
    // workload instead of front-loading it.
    std::vector<CrashPlan> sampled;
    sampled.reserve(cfg.max_cases);
    for (uint64_t i = 0; i < cfg.max_cases; ++i) {
      sampled.push_back(cases[i * cases.size() / cfg.max_cases]);
    }
    result.cases_dropped = cases.size() - sampled.size();
    cases = std::move(sampled);
  }

  uint64_t runs0 = CounterValue("storage.recovery.runs");
  uint64_t seen0 = CounterValue("storage.recovery.wal_records_seen");
  uint64_t replayed0 = CounterValue("storage.recovery.replayed");
  uint64_t discarded0 = CounterValue("storage.recovery.discarded");

  std::vector<CrashCaseOutcome> outcomes(cases.size());
  ThreadPool pool(cfg.threads);
  pool.ParallelFor(cases.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      outcomes[i] = RunOneCase(cfg, cases[i], ctx);
    }
  });

  Digest digest;
  for (const CrashCaseOutcome& out : outcomes) {
    digest.Add("op=" + std::to_string(out.crash_op) +
               " var=" + CrashVariantName(out.variant));
    if (out.error.empty()) {
      digest.Add(" c=" + std::to_string(out.recovered_batches) + " ok\n");
    } else {
      digest.Add(" FAIL " + out.error + "\n");
      ++result.failures;
      if (result.failed.size() < kMaxReportedFailures) {
        result.failed.push_back(out);
      }
    }
    ++result.cases_run;
  }
  result.digest = digest.value;
  result.recovery_runs = CounterValue("storage.recovery.runs") - runs0;
  result.wal_records_seen =
      CounterValue("storage.recovery.wal_records_seen") - seen0;
  result.wal_records_replayed =
      CounterValue("storage.recovery.replayed") - replayed0;
  result.wal_records_discarded =
      CounterValue("storage.recovery.discarded") - discarded0;
  return result;
}

Result<CrashCaseOutcome> RunCrashCase(const CrashCampaignConfig& cfg,
                                      uint64_t crash_op,
                                      CrashVariant variant) {
  CODES_ASSIGN_OR_RETURN(CampaignContext ctx, PrepareContext(cfg));
  if (crash_op >= ctx.trace.size()) {
    return Status::InvalidArgument(
        "crash_op " + std::to_string(crash_op) + " out of range (workload has " +
        std::to_string(ctx.trace.size()) + " boundaries)");
  }
  CrashPlan plan{crash_op, variant, 0};
  if (variant == CrashVariant::kTorn) {
    if (ctx.trace[crash_op].kind != CrashOpRecord::Kind::kWrite) {
      return Status::InvalidArgument(
          "torn variant requires a write boundary");
    }
    plan.torn_bytes = static_cast<size_t>(ctx.trace[crash_op].bytes / 2);
  }
  return RunOneCase(cfg, plan, ctx);
}

}  // namespace codes::storage
