#include "storage/wal.h"

#include <cstring>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace codes::storage {

namespace {

constexpr size_t kRecordHeader = 24;
constexpr size_t kCrcOff = 0;
constexpr size_t kLenOff = 4;
constexpr size_t kLsnOff = 8;
constexpr size_t kTypeOff = 16;
constexpr size_t kPageOff = 20;

Counter& RecordCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.wal.records");
  return c;
}
Counter& SyncCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.wal.syncs");
  return c;
}
Counter& TruncateCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.wal.truncates");
  return c;
}
Counter& BytesCounter() {
  static Counter& c =
      MetricsRegistry::Global().GetCounter("storage.wal.bytes_appended");
  return c;
}

bool ValidType(uint8_t t) {
  return t == static_cast<uint8_t>(WalRecordType::kPageImage) ||
         t == static_cast<uint8_t>(WalRecordType::kCommit) ||
         t == static_cast<uint8_t>(WalRecordType::kCheckpoint);
}

}  // namespace

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::Internal("cannot open WAL file: " + path);
  }
  auto wal = std::unique_ptr<Wal>(new Wal());
  wal->file_ = f;
  CODES_RETURN_IF_ERROR(wal->Init());
  return wal;
}

Result<std::unique_ptr<Wal>> Wal::OpenSim(SimEnv* env,
                                          const std::string& name) {
  auto wal = std::unique_ptr<Wal>(new Wal());
  wal->sim_ = env->GetFile(name);
  CODES_RETURN_IF_ERROR(wal->Init());
  return wal;
}

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Wal::WriteRaw(uint64_t off, const void* data, size_t n) {
  if (sim_ != nullptr) return sim_->Write(off, data, n);
  if (std::fseek(file_, static_cast<long>(off), SEEK_SET) != 0 ||
      std::fwrite(data, 1, n, file_) != n) {
    return Status::Internal("short write to WAL");
  }
  return Status::Ok();
}

Status Wal::ReadRaw(uint64_t off, void* out, size_t n) const {
  if (sim_ != nullptr) return sim_->Read(off, out, n);
  std::FILE* f = file_;
  if (std::fseek(f, static_cast<long>(off), SEEK_SET) != 0 ||
      std::fread(out, 1, n, f) != n) {
    return Status::Internal("short read from WAL");
  }
  return Status::Ok();
}

uint64_t Wal::FileSize() const {
  if (sim_ != nullptr) return sim_->size();
  std::FILE* f = file_;
  if (std::fseek(f, 0, SEEK_END) != 0) return 0;
  long size = std::ftell(f);
  return size < 0 ? 0 : static_cast<uint64_t>(size);
}

Status Wal::Init() {
  CODES_ASSIGN_OR_RETURN(ScanResult scan, ReadAll());
  append_off_ = scan.valid_bytes;
  if (!scan.records.empty()) {
    next_lsn_ = scan.records.back().lsn + 1;
    // Bytes already in the log at open survived whatever wrote them; they
    // are durable by definition once the scan validates them.
    durable_lsn_ = scan.records.back().lsn;
  }
  return Status::Ok();
}

Result<Wal::ScanResult> Wal::ReadAll() const {
  ScanResult out;
  uint64_t size = FileSize();
  uint64_t off = 0;
  Lsn prev_lsn = 0;
  std::byte header[kRecordHeader];
  while (off + kRecordHeader <= size) {
    CODES_RETURN_IF_ERROR(ReadRaw(off, header, kRecordHeader));
    uint32_t stored_crc = LoadU32(header + kCrcOff);
    uint32_t len = LoadU32(header + kLenOff);
    Lsn lsn = LoadU64(header + kLsnOff);
    uint8_t type = static_cast<uint8_t>(header[kTypeOff]);
    // Structural sanity before trusting `len` for the payload read: an
    // insane length, bad type, or non-increasing LSN means these bytes
    // are not a record head (torn tail / stale garbage past the tail).
    if (len > kPageSize || !ValidType(type) || lsn <= prev_lsn ||
        off + kRecordHeader + len > size) {
      break;
    }
    WalRecord rec;
    rec.lsn = lsn;
    rec.type = static_cast<WalRecordType>(type);
    rec.page = LoadU32(header + kPageOff);
    rec.payload.resize(len);
    if (len > 0) {
      CODES_RETURN_IF_ERROR(
          ReadRaw(off + kRecordHeader, rec.payload.data(), len));
    }
    uint32_t crc = Crc32(header + kLenOff, kRecordHeader - kLenOff);
    if (len > 0) crc = Crc32(rec.payload.data(), len, crc);
    if (crc != stored_crc) break;
    out.records.push_back(std::move(rec));
    prev_lsn = lsn;
    off += kRecordHeader + len;
  }
  out.valid_bytes = off;
  if (off < size) out.torn_tail_records = 1;
  return out;
}

Result<Lsn> Wal::AppendRecord(WalRecordType type, PageId page,
                              const std::byte* payload, size_t payload_len) {
  Lsn lsn = next_lsn_;
  std::vector<std::byte> rec(kRecordHeader + payload_len);
  StoreU32(rec.data() + kLenOff, static_cast<uint32_t>(payload_len));
  StoreU64(rec.data() + kLsnOff, lsn);
  rec[kTypeOff] = static_cast<std::byte>(type);
  StoreU32(rec.data() + kPageOff, page);
  if (payload_len > 0) {
    std::memcpy(rec.data() + kRecordHeader, payload, payload_len);
  }
  StoreU32(rec.data() + kCrcOff,
           Crc32(rec.data() + kLenOff, rec.size() - kLenOff));
  CODES_RETURN_IF_ERROR(WriteRaw(append_off_, rec.data(), rec.size()));
  append_off_ += rec.size();
  next_lsn_ = lsn + 1;
  RecordCounter().Increment();
  BytesCounter().Increment(rec.size());
  return lsn;
}

Result<Lsn> Wal::AppendPageImage(PageId page, const std::byte* data) {
  return AppendRecord(WalRecordType::kPageImage, page, data, kPageSize);
}

Result<Lsn> Wal::AppendCommit() {
  return AppendRecord(WalRecordType::kCommit, kInvalidPageId, nullptr, 0);
}

Result<Lsn> Wal::AppendCheckpoint() {
  return AppendRecord(WalRecordType::kCheckpoint, kInvalidPageId, nullptr, 0);
}

Status Wal::Sync() {
  CODES_TRACE_SPAN(span, "storage.wal.sync");
  if (Failpoints::ShouldFail(FailpointSite::kStorageWalSync)) {
    return Failpoints::FailStatus(FailpointSite::kStorageWalSync);
  }
  if (sim_ != nullptr) {
    CODES_RETURN_IF_ERROR(sim_->Sync());
  } else {
    if (std::fflush(file_) != 0) {
      return Status::Internal("cannot flush WAL");
    }
#ifndef _WIN32
    if (::fdatasync(::fileno(file_)) != 0) {
      return Status::Internal("fdatasync failed on WAL");
    }
#endif
  }
  durable_lsn_ = next_lsn_ - 1;
  SyncCounter().Increment();
  return Status::Ok();
}

Status Wal::Truncate() {
  if (sim_ != nullptr) {
    CODES_RETURN_IF_ERROR(sim_->Truncate(0));
    CODES_RETURN_IF_ERROR(sim_->Sync());
  } else {
    if (std::fflush(file_) != 0) {
      return Status::Internal("cannot flush WAL before truncate");
    }
#ifndef _WIN32
    if (::ftruncate(::fileno(file_), 0) != 0) {
      return Status::Internal("cannot truncate WAL");
    }
    if (::fdatasync(::fileno(file_)) != 0) {
      return Status::Internal("fdatasync failed on WAL truncate");
    }
#endif
    std::rewind(file_);
  }
  append_off_ = 0;
  // LSNs stay monotone across truncation: durable state is simply
  // "everything", since an empty log has nothing pending.
  durable_lsn_ = next_lsn_ - 1;
  TruncateCounter().Increment();
  return Status::Ok();
}

}  // namespace codes::storage
