#ifndef CODES_STORAGE_PAGE_H_
#define CODES_STORAGE_PAGE_H_

// Fixed-size page primitives shared by the disk manager, buffer pool,
// table heap, and B+ tree (DESIGN.md section 14). All on-page integers are
// stored in host byte order via memcpy — database files are a cache
// format, not an interchange format, so cross-endian portability is
// explicitly out of scope.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <tuple>

namespace codes::storage {

/// One buffer-pool frame / one disk block. 8 KiB holds ~hundreds of
/// typical rows and keeps even the widest generated row (< 1 KiB) far
/// from the oversize limit.
inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Physical row locator: (heap page, slot within the page). RIDs are
/// assigned monotonically by append order, so sorting RIDs recovers
/// insertion order — the property index scans rely on to match the
/// sequential-scan row order exactly.
struct Rid {
  PageId page = kInvalidPageId;
  uint32_t slot = 0;

  bool operator==(const Rid& o) const {
    return page == o.page && slot == o.slot;
  }
  bool operator!=(const Rid& o) const { return !(*this == o); }
  bool operator<(const Rid& o) const {
    return std::tie(page, slot) < std::tie(o.page, o.slot);
  }
};

// ------------------------------------------------------------ byte codec
inline void StoreU16(std::byte* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void StoreU32(std::byte* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void StoreU64(std::byte* p, uint64_t v) { std::memcpy(p, &v, 8); }

inline uint16_t LoadU16(const std::byte* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline uint32_t LoadU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t LoadU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace codes::storage

#endif  // CODES_STORAGE_PAGE_H_
