#ifndef CODES_STORAGE_PAGE_H_
#define CODES_STORAGE_PAGE_H_

// Fixed-size page primitives shared by the disk manager, buffer pool,
// table heap, and B+ tree (DESIGN.md section 14). All on-page integers are
// stored in host byte order via memcpy — database files are a cache
// format, not an interchange format, so cross-endian portability is
// explicitly out of scope.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <tuple>

namespace codes::storage {

/// One buffer-pool frame / one disk block. 8 KiB holds ~hundreds of
/// typical rows and keeps even the widest generated row (< 1 KiB) far
/// from the oversize limit.
inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;

/// Log sequence number. LSN 0 means "never logged" (pages written outside
/// any WAL, e.g. during bulk load); real LSNs start at 1.
using Lsn = uint64_t;

// ------------------------------------------------------- physical header
// Every page begins with a 16-byte physical header owned by the disk
// manager / WAL layer, invisible to the structures above it (table heap,
// B+ tree, catalog all address their bytes relative to kPageHeaderBytes):
//
//   [u32 checksum][u32 flags][u64 lsn]
//
// The checksum is CRC-32 over bytes [4, kPageSize) — everything except
// the checksum field itself — stamped by DiskManager::WritePage and
// verified by ReadPage. An all-zero page is also accepted as valid
// (freshly allocated, never written), which works because CRC32 of a
// non-empty zero buffer is nonzero: a torn write can't masquerade as an
// unallocated page unless it tore to *exactly* all zeroes, in which case
// it is indistinguishable from unallocated by construction.
inline constexpr size_t kPageChecksumOff = 0;
inline constexpr size_t kPageFlagsOff = 4;
inline constexpr size_t kPageLsnOff = 8;
inline constexpr size_t kPageHeaderBytes = 16;

/// Physical row locator: (heap page, slot within the page). RIDs are
/// assigned monotonically by append order, so sorting RIDs recovers
/// insertion order — the property index scans rely on to match the
/// sequential-scan row order exactly.
struct Rid {
  PageId page = kInvalidPageId;
  uint32_t slot = 0;

  bool operator==(const Rid& o) const {
    return page == o.page && slot == o.slot;
  }
  bool operator!=(const Rid& o) const { return !(*this == o); }
  bool operator<(const Rid& o) const {
    return std::tie(page, slot) < std::tie(o.page, o.slot);
  }
};

// ------------------------------------------------------------ byte codec
inline void StoreU16(std::byte* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void StoreU32(std::byte* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void StoreU64(std::byte* p, uint64_t v) { std::memcpy(p, &v, 8); }

inline uint16_t LoadU16(const std::byte* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
inline uint32_t LoadU32(const std::byte* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
inline uint64_t LoadU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace codes::storage

#endif  // CODES_STORAGE_PAGE_H_
