#include "storage/btree.h"

#include <cstring>

#include "common/failpoint.h"
#include "storage/record_codec.h"

namespace codes::storage {

namespace {

// Node page layout: the node region starts after the physical page header
// (checksum/LSN, page.h) with a 16-byte node header followed by
// length-prefixed entries packed sequentially (nodes are rewritten
// wholesale on mutation, so no slot directory is needed):
//   [u8 type][u8 pad][u16 count][u32 next_leaf][u32 leftmost_child][u32 pad]
//   ([u16 len][entry bytes]) x count
// Leaf entry:      serialized key Value || rid.page u32 || rid.slot u32
// Internal entry:  <fence: key Value || rid> || child u32
// The fence of internal entry i is the smallest composite key in child
// i's subtree at the time it was created (a "low fence"), so routing never
// needs fence updates when new maxima are inserted.
constexpr size_t kNodeHeader = 16;
/// Bytes a node may occupy: everything past the physical page header.
constexpr size_t kNodeCapacity = kPageSize - kPageHeaderBytes;
constexpr uint8_t kLeafType = 1;
constexpr uint8_t kInternalType = 2;

/// A delete that leaves a node under this many bytes triggers rebalancing.
constexpr size_t kUnderflowBytes = kPageSize / 4;

int CompareKeyRid(const sql::Value& a, const Rid& ar, const sql::Value& b,
                  const Rid& br) {
  int c = a.Compare(b);
  if (c != 0) return c;
  if (ar < br) return -1;
  if (br < ar) return 1;
  return 0;
}

std::string MakeLeafEntry(const sql::Value& key, const Rid& rid) {
  std::string out;
  AppendValue(key, &out);
  AppendU32(rid.page, &out);
  AppendU32(rid.slot, &out);
  return out;
}

/// Parses the composite key at the front of any entry (leaf or internal;
/// an internal entry's trailing child id is simply not consumed).
Status ParseEntryKey(const std::string& e, sql::Value* key, Rid* rid) {
  size_t pos = 0;
  CODES_RETURN_IF_ERROR(ParseValue(e.data(), e.size(), &pos, key));
  if (pos + 8 > e.size()) return Status::Internal("truncated index entry");
  std::memcpy(&rid->page, e.data() + pos, 4);
  std::memcpy(&rid->slot, e.data() + pos + 4, 4);
  return Status::Ok();
}

PageId InternalChild(const std::string& e) {
  PageId child;
  std::memcpy(&child, e.data() + e.size() - 4, 4);
  return child;
}

/// The fence (composite key bytes) of an internal entry. A leaf entry IS
/// its own fence encoding, which is what split propagation relies on.
std::string FenceOf(const std::string& internal_entry) {
  return internal_entry.substr(0, internal_entry.size() - 4);
}

std::string MakeInternalEntry(const std::string& fence, PageId child) {
  std::string out = fence;
  AppendU32(child, &out);
  return out;
}

void ReplaceFence(std::string* internal_entry, const std::string& fence) {
  PageId child = InternalChild(*internal_entry);
  *internal_entry = MakeInternalEntry(fence, child);
}

}  // namespace

struct BPlusTree::Node {
  bool leaf = true;
  PageId next = kInvalidPageId;      ///< leaf chain
  PageId leftmost = kInvalidPageId;  ///< internal: child left of entry 0
  std::vector<std::string> entries;
};

struct BPlusTree::InsertOutcome {
  bool split = false;
  std::string fence;  ///< low fence of the new right node
  PageId right = kInvalidPageId;
};

namespace {

size_t NodeBytes(const BPlusTree::Node& node);

}  // namespace

// Node helpers need access to the nested struct, so they live here.
namespace {

size_t NodeBytes(const BPlusTree::Node& node) {
  size_t bytes = kNodeHeader;
  for (const auto& e : node.entries) bytes += 2 + e.size();
  return bytes;
}

Status LoadNode(BufferPool* pool, PageId id, BPlusTree::Node* node) {
  CODES_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(id));
  const std::byte* p = guard.data() + kPageHeaderBytes;
  uint8_t type = static_cast<uint8_t>(p[0]);
  if (type != kLeafType && type != kInternalType) {
    return Status::Internal("corrupt index node " + std::to_string(id));
  }
  node->leaf = type == kLeafType;
  uint16_t count = LoadU16(p + 2);
  node->next = LoadU32(p + 4);
  node->leftmost = LoadU32(p + 8);
  node->entries.clear();
  node->entries.reserve(count);
  size_t pos = kNodeHeader;
  for (uint16_t i = 0; i < count; ++i) {
    if (pos + 2 > kNodeCapacity) {
      return Status::Internal("corrupt index node");
    }
    uint16_t len = LoadU16(p + pos);
    pos += 2;
    if (pos + len > kNodeCapacity) {
      return Status::Internal("corrupt index node");
    }
    node->entries.emplace_back(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
  }
  return Status::Ok();
}

Status StoreNodeInto(PageGuard* guard, const BPlusTree::Node& node) {
  if (NodeBytes(node) > kNodeCapacity) {
    return Status::Internal("index node overflow");
  }
  // Clear the node region only: the physical page header (checksum, LSN)
  // belongs to the disk manager / WAL layer and must survive rewrites.
  std::byte* p = guard->data() + kPageHeaderBytes;
  std::memset(p, 0, kNodeCapacity);
  p[0] = static_cast<std::byte>(node.leaf ? kLeafType : kInternalType);
  StoreU16(p + 2, static_cast<uint16_t>(node.entries.size()));
  StoreU32(p + 4, node.next);
  StoreU32(p + 8, node.leftmost);
  size_t pos = kNodeHeader;
  for (const auto& e : node.entries) {
    StoreU16(p + pos, static_cast<uint16_t>(e.size()));
    pos += 2;
    std::memcpy(p + pos, e.data(), e.size());
    pos += e.size();
  }
  guard->MarkDirty();
  return Status::Ok();
}

Status StoreNode(BufferPool* pool, PageId id, const BPlusTree::Node& node) {
  CODES_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(id));
  return StoreNodeInto(&guard, node);
}

Result<PageId> NewNode(BufferPool* pool, const BPlusTree::Node& node) {
  CODES_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPage());
  CODES_RETURN_IF_ERROR(StoreNodeInto(&guard, node));
  return guard.page_id();
}

/// Index of the last entry whose fence is <= (key, rid), or -1 (descend
/// into leftmost_child).
Result<int> DescendPosition(const BPlusTree::Node& node, const sql::Value& key,
                            const Rid& rid) {
  int pos = -1;
  for (size_t i = 0; i < node.entries.size(); ++i) {
    sql::Value fence_key;
    Rid fence_rid;
    CODES_RETURN_IF_ERROR(
        ParseEntryKey(node.entries[i], &fence_key, &fence_rid));
    if (CompareKeyRid(fence_key, fence_rid, key, rid) <= 0) {
      pos = static_cast<int>(i);
    } else {
      break;
    }
  }
  return pos;
}

/// Split index: first j in [1, n) such that entries[0..j) hold at least
/// half the payload bytes.
size_t SplitIndex(const std::vector<std::string>& entries) {
  size_t total = 0;
  for (const auto& e : entries) total += 2 + e.size();
  size_t acc = 0;
  for (size_t j = 0; j + 1 < entries.size(); ++j) {
    acc += 2 + entries[j].size();
    if (acc * 2 >= total && j + 1 >= 1) return j + 1;
  }
  return entries.size() - 1;
}

}  // namespace

BPlusTree::BPlusTree(BufferPool* pool, PageId root)
    : pool_(pool), root_(root) {}

Status BPlusTree::Insert(const sql::Value& key, const Rid& rid) {
  std::string entry = MakeLeafEntry(key, rid);
  if (entry.size() + 4 + 2 > kPageSize / 8) {
    // Oversized keys would break the two-entries-per-node minimum with
    // slack; the storage engine skips indexing such columns entirely.
    return Status::InvalidArgument("index key too large");
  }
  if (root_ == kInvalidPageId) {
    Node leaf;
    leaf.leaf = true;
    leaf.entries.push_back(std::move(entry));
    CODES_ASSIGN_OR_RETURN(root_, NewNode(pool_, leaf));
    return Status::Ok();
  }
  InsertOutcome outcome;
  CODES_RETURN_IF_ERROR(InsertRec(root_, entry, key, rid, &outcome));
  if (outcome.split) {
    Node new_root;
    new_root.leaf = false;
    new_root.leftmost = root_;
    new_root.entries.push_back(
        MakeInternalEntry(outcome.fence, outcome.right));
    CODES_ASSIGN_OR_RETURN(root_, NewNode(pool_, new_root));
  }
  return Status::Ok();
}

Status BPlusTree::InsertRec(PageId node_id, const std::string& leaf_entry,
                            const sql::Value& key, const Rid& rid,
                            InsertOutcome* outcome) {
  Node node;
  CODES_RETURN_IF_ERROR(LoadNode(pool_, node_id, &node));

  if (node.leaf) {
    // Position: first entry with composite key > (key, rid).
    size_t pos = 0;
    for (; pos < node.entries.size(); ++pos) {
      sql::Value ekey;
      Rid erid;
      CODES_RETURN_IF_ERROR(ParseEntryKey(node.entries[pos], &ekey, &erid));
      int cmp = CompareKeyRid(ekey, erid, key, rid);
      if (cmp == 0) {
        return Status::InvalidArgument("duplicate index entry");
      }
      if (cmp > 0) break;
    }
    node.entries.insert(node.entries.begin() + pos, leaf_entry);
    if (NodeBytes(node) <= kNodeCapacity) {
      return StoreNode(pool_, node_id, node);
    }
    if (Failpoints::ShouldFail(FailpointSite::kStorageSplit)) {
      return Failpoints::FailStatus(FailpointSite::kStorageSplit);
    }
    size_t j = SplitIndex(node.entries);
    Node right;
    right.leaf = true;
    right.next = node.next;
    right.entries.assign(node.entries.begin() + j, node.entries.end());
    node.entries.resize(j);
    CODES_ASSIGN_OR_RETURN(PageId right_id, NewNode(pool_, right));
    node.next = right_id;
    CODES_RETURN_IF_ERROR(StoreNode(pool_, node_id, node));
    outcome->split = true;
    outcome->fence = right.entries.front();  // leaf entry == its fence
    outcome->right = right_id;
    return Status::Ok();
  }

  CODES_ASSIGN_OR_RETURN(int pos, DescendPosition(node, key, rid));
  PageId child =
      pos < 0 ? node.leftmost : InternalChild(node.entries[pos]);
  InsertOutcome child_outcome;
  CODES_RETURN_IF_ERROR(
      InsertRec(child, leaf_entry, key, rid, &child_outcome));
  if (!child_outcome.split) return Status::Ok();

  node.entries.insert(
      node.entries.begin() + pos + 1,
      MakeInternalEntry(child_outcome.fence, child_outcome.right));
  if (NodeBytes(node) <= kNodeCapacity) {
    return StoreNode(pool_, node_id, node);
  }
  if (Failpoints::ShouldFail(FailpointSite::kStorageSplit)) {
    return Failpoints::FailStatus(FailpointSite::kStorageSplit);
  }
  size_t j = SplitIndex(node.entries);
  Node right;
  right.leaf = false;
  right.leftmost = InternalChild(node.entries[j]);
  right.entries.assign(node.entries.begin() + j + 1, node.entries.end());
  outcome->fence = FenceOf(node.entries[j]);
  node.entries.resize(j);
  CODES_ASSIGN_OR_RETURN(PageId right_id, NewNode(pool_, right));
  CODES_RETURN_IF_ERROR(StoreNode(pool_, node_id, node));
  outcome->split = true;
  outcome->right = right_id;
  return Status::Ok();
}

Status BPlusTree::Remove(const sql::Value& key, const Rid& rid) {
  if (root_ == kInvalidPageId) {
    return Status::NotFound("index entry not found");
  }
  bool removed = false;
  CODES_RETURN_IF_ERROR(RemoveRec(root_, key, rid, &removed));
  if (!removed) return Status::NotFound("index entry not found");
  Node root;
  CODES_RETURN_IF_ERROR(LoadNode(pool_, root_, &root));
  if (!root.leaf && root.entries.empty()) {
    root_ = root.leftmost;  // height shrinks; old root page is abandoned
  }
  return Status::Ok();
}

Status BPlusTree::RemoveRec(PageId node_id, const sql::Value& key,
                            const Rid& rid, bool* removed) {
  Node node;
  CODES_RETURN_IF_ERROR(LoadNode(pool_, node_id, &node));

  if (node.leaf) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      sql::Value ekey;
      Rid erid;
      CODES_RETURN_IF_ERROR(ParseEntryKey(node.entries[i], &ekey, &erid));
      int cmp = CompareKeyRid(ekey, erid, key, rid);
      if (cmp == 0) {
        node.entries.erase(node.entries.begin() + i);
        *removed = true;
        return StoreNode(pool_, node_id, node);
      }
      if (cmp > 0) break;
    }
    *removed = false;
    return Status::Ok();
  }

  CODES_ASSIGN_OR_RETURN(int pos, DescendPosition(node, key, rid));
  PageId child =
      pos < 0 ? node.leftmost : InternalChild(node.entries[pos]);
  CODES_RETURN_IF_ERROR(RemoveRec(child, key, rid, removed));
  if (!*removed) return Status::Ok();
  CODES_RETURN_IF_ERROR(RebalanceChild(&node, node_id, pos));
  return StoreNode(pool_, node_id, node);
}

Status BPlusTree::RebalanceChild(Node* parent, PageId parent_id,
                                 int child_pos) {
  (void)parent_id;
  PageId child_id = child_pos < 0 ? parent->leftmost
                                  : InternalChild(parent->entries[child_pos]);
  Node child;
  CODES_RETURN_IF_ERROR(LoadNode(pool_, child_id, &child));
  if (NodeBytes(child) >= kUnderflowBytes) return Status::Ok();
  int count = static_cast<int>(parent->entries.size());
  if (count == 0) return Status::Ok();  // no sibling (only at the root)

  if (child_pos < count - 1) {
    // Rebalance against the RIGHT sibling.
    int sib_pos = child_pos + 1;
    PageId sib_id = InternalChild(parent->entries[sib_pos]);
    Node sib;
    CODES_RETURN_IF_ERROR(LoadNode(pool_, sib_id, &sib));
    std::string sib_fence = FenceOf(parent->entries[sib_pos]);
    size_t merge_extra = child.leaf ? 0 : 2 + sib_fence.size() + 4;
    if (NodeBytes(child) + (NodeBytes(sib) - kNodeHeader) + merge_extra <=
        kNodeCapacity) {
      // Merge sibling into child; the sibling's page is abandoned (the
      // file has no free list — space is reclaimed only by a rebuild).
      if (!child.leaf) {
        child.entries.push_back(MakeInternalEntry(sib_fence, sib.leftmost));
      }
      for (auto& e : sib.entries) child.entries.push_back(std::move(e));
      if (child.leaf) child.next = sib.next;
      parent->entries.erase(parent->entries.begin() + sib_pos);
      return StoreNode(pool_, child_id, child);
    }
    // Borrow the sibling's first entry.
    if (child.leaf) {
      child.entries.push_back(sib.entries.front());
      sib.entries.erase(sib.entries.begin());
      ReplaceFence(&parent->entries[sib_pos], sib.entries.front());
    } else {
      child.entries.push_back(MakeInternalEntry(sib_fence, sib.leftmost));
      sib.leftmost = InternalChild(sib.entries.front());
      ReplaceFence(&parent->entries[sib_pos], FenceOf(sib.entries.front()));
      sib.entries.erase(sib.entries.begin());
    }
    CODES_RETURN_IF_ERROR(StoreNode(pool_, child_id, child));
    return StoreNode(pool_, sib_id, sib);
  }

  // Rebalance against the LEFT sibling (child is the rightmost child).
  int sib_pos = child_pos - 1;
  PageId sib_id = sib_pos < 0 ? parent->leftmost
                              : InternalChild(parent->entries[sib_pos]);
  Node sib;
  CODES_RETURN_IF_ERROR(LoadNode(pool_, sib_id, &sib));
  std::string child_fence = FenceOf(parent->entries[child_pos]);
  size_t merge_extra = child.leaf ? 0 : 2 + child_fence.size() + 4;
  if (NodeBytes(sib) + (NodeBytes(child) - kNodeHeader) + merge_extra <=
      kNodeCapacity) {
    // Merge child into the left sibling.
    if (!child.leaf) {
      sib.entries.push_back(MakeInternalEntry(child_fence, child.leftmost));
    }
    for (auto& e : child.entries) sib.entries.push_back(std::move(e));
    if (child.leaf) sib.next = child.next;
    parent->entries.erase(parent->entries.begin() + child_pos);
    return StoreNode(pool_, sib_id, sib);
  }
  // Borrow the sibling's last entry.
  if (child.leaf) {
    child.entries.insert(child.entries.begin(), sib.entries.back());
    sib.entries.pop_back();
    ReplaceFence(&parent->entries[child_pos], child.entries.front());
  } else {
    std::string borrowed = sib.entries.back();
    sib.entries.pop_back();
    child.entries.insert(
        child.entries.begin(),
        MakeInternalEntry(child_fence, child.leftmost));
    child.leftmost = InternalChild(borrowed);
    ReplaceFence(&parent->entries[child_pos], FenceOf(borrowed));
  }
  CODES_RETURN_IF_ERROR(StoreNode(pool_, child_id, child));
  return StoreNode(pool_, sib_id, sib);
}

Result<bool> BPlusTree::Contains(const sql::Value& key,
                                 const Rid& rid) const {
  CODES_ASSIGN_OR_RETURN(Iterator it, Seek(key));
  while (it.Valid()) {
    int cmp = CompareKeyRid(it.key(), it.rid(), key, rid);
    if (cmp == 0) return true;
    if (cmp > 0) return false;
    CODES_RETURN_IF_ERROR(it.Advance());
  }
  return false;
}

Status BPlusTree::LoadLeafInto(PageId leaf, Iterator* it) const {
  Node node;
  CODES_RETURN_IF_ERROR(LoadNode(pool_, leaf, &node));
  it->entries_.clear();
  it->entries_.reserve(node.entries.size());
  for (const auto& e : node.entries) {
    Entry entry;
    CODES_RETURN_IF_ERROR(ParseEntryKey(e, &entry.key, &entry.rid));
    it->entries_.push_back(std::move(entry));
  }
  it->pos_ = 0;
  it->next_leaf_ = node.next;
  return Status::Ok();
}

Status BPlusTree::Iterator::Advance() {
  if (pos_ < entries_.size()) ++pos_;
  while (pos_ >= entries_.size() && next_leaf_ != kInvalidPageId) {
    CODES_RETURN_IF_ERROR(tree_->LoadLeafInto(next_leaf_, this));
  }
  return Status::Ok();
}

Result<BPlusTree::Iterator> BPlusTree::SeekFirst() const {
  Iterator it;
  it.tree_ = this;
  if (root_ == kInvalidPageId) return it;
  PageId id = root_;
  for (;;) {
    Node node;
    CODES_RETURN_IF_ERROR(LoadNode(pool_, id, &node));
    if (node.leaf) break;
    id = node.leftmost;
  }
  CODES_RETURN_IF_ERROR(LoadLeafInto(id, &it));
  // Skip fully drained empty leaves (possible after deletes).
  while (it.pos_ >= it.entries_.size() &&
         it.next_leaf_ != kInvalidPageId) {
    CODES_RETURN_IF_ERROR(LoadLeafInto(it.next_leaf_, &it));
  }
  return it;
}

Result<BPlusTree::Iterator> BPlusTree::Seek(const sql::Value& key) const {
  Iterator it;
  it.tree_ = this;
  if (root_ == kInvalidPageId) return it;
  const Rid min_rid{0, 0};
  PageId id = root_;
  for (;;) {
    Node node;
    CODES_RETURN_IF_ERROR(LoadNode(pool_, id, &node));
    if (node.leaf) break;
    CODES_ASSIGN_OR_RETURN(int pos, DescendPosition(node, key, min_rid));
    id = pos < 0 ? node.leftmost : InternalChild(node.entries[pos]);
  }
  CODES_RETURN_IF_ERROR(LoadLeafInto(id, &it));
  for (;;) {
    if (it.pos_ >= it.entries_.size()) {
      if (it.next_leaf_ == kInvalidPageId) break;
      CODES_RETURN_IF_ERROR(LoadLeafInto(it.next_leaf_, &it));
      continue;
    }
    const Entry& e = it.entries_[it.pos_];
    if (CompareKeyRid(e.key, e.rid, key, min_rid) >= 0) break;
    ++it.pos_;
  }
  return it;
}

Status BPlusTree::CollectRange(const sql::IndexBound& lo,
                               const sql::IndexBound& hi,
                               std::vector<Rid>* out) const {
  Result<Iterator> start =
      lo.value != nullptr ? Seek(*lo.value) : SeekFirst();
  CODES_RETURN_IF_ERROR(start.status());
  Iterator it = std::move(*start);
  while (it.Valid()) {
    if (lo.value != nullptr && !lo.inclusive &&
        it.key().Compare(*lo.value) == 0) {
      CODES_RETURN_IF_ERROR(it.Advance());
      continue;
    }
    if (hi.value != nullptr) {
      int cmp = it.key().Compare(*hi.value);
      if (cmp > 0 || (cmp == 0 && !hi.inclusive)) break;
    }
    out->push_back(it.rid());
    CODES_RETURN_IF_ERROR(it.Advance());
  }
  return Status::Ok();
}

Result<uint64_t> BPlusTree::CountEntries() const {
  CODES_ASSIGN_OR_RETURN(Iterator it, SeekFirst());
  uint64_t n = 0;
  while (it.Valid()) {
    ++n;
    CODES_RETURN_IF_ERROR(it.Advance());
  }
  return n;
}

}  // namespace codes::storage
