#include "serve/admission.h"

#include <algorithm>
#include <cmath>

namespace codes {
namespace serve {

TokenBucket::TokenBucket(double rate_per_sec, double burst) {
  // Sanitize before storing: a NaN burst would poison tokens_ forever
  // (std::max(NaN, 1.0) is NaN, and NaN < 1.0 is false, so TryAcquire
  // would admit every request), and a non-finite rate has no meaningful
  // refill semantics — treat it as "unlimited" like rate <= 0.
  if (!std::isfinite(rate_per_sec)) rate_per_sec = 0.0;
  if (!std::isfinite(burst) || burst < 1.0) burst = 1.0;
  rate_per_sec_ = rate_per_sec;
  burst_ = burst;
  tokens_ = burst;
}

void TokenBucket::Refill(uint64_t now_us) {
  if (!primed_) {
    // The first observation anchors the clock; the bucket starts full so a
    // cold front end never rejects its very first burst.
    last_refill_us_ = now_us;
    primed_ = true;
    return;
  }
  if (now_us <= last_refill_us_) return;
  double elapsed_s =
      static_cast<double>(now_us - last_refill_us_) * 1e-6;
  // Saturate at capacity, written so that a non-finite accrual (an
  // arbitrarily long idle gap, extreme rates) also lands on burst_: the
  // inverted comparison is false for NaN, so poison clamps instead of
  // propagating into tokens_ and bypassing admission forever.
  double next = tokens_ + elapsed_s * rate_per_sec_;
  tokens_ = (next < burst_) ? next : burst_;
  last_refill_us_ = now_us;
}

bool TokenBucket::TryAcquire(uint64_t now_us) {
  if (rate_per_sec_ <= 0.0) return true;
  Refill(now_us);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::tokens_at(uint64_t now_us) const {
  if (rate_per_sec_ <= 0.0) return burst_;
  if (!primed_ || now_us <= last_refill_us_) return tokens_;
  double elapsed_s =
      static_cast<double>(now_us - last_refill_us_) * 1e-6;
  double next = tokens_ + elapsed_s * rate_per_sec_;
  return (next < burst_) ? next : burst_;
}

WeightedFairLimiter::WeightedFairLimiter(
    double capacity_qps, const std::vector<TenantSpec>& tenants) {
  if (!std::isfinite(capacity_qps) || capacity_qps <= 0.0 ||
      tenants.empty()) {
    return;  // limiting disabled: no buckets, TryAcquire always true
  }
  double total_weight = 0.0;
  for (const TenantSpec& spec : tenants) {
    total_weight +=
        (std::isfinite(spec.weight) && spec.weight > 0.0) ? spec.weight : 0.0;
  }
  if (total_weight <= 0.0) return;
  buckets_.reserve(tenants.size());
  rates_.reserve(tenants.size());
  for (const TenantSpec& spec : tenants) {
    double weight =
        (std::isfinite(spec.weight) && spec.weight > 0.0) ? spec.weight : 0.0;
    // A zero-weight tenant still gets an epsilon share: starving a
    // configured tenant entirely is never the fair-share contract.
    double rate = capacity_qps * std::max(weight, 1e-6) / total_weight;
    rates_.push_back(rate);
    buckets_.emplace_back(rate, spec.burst);
  }
}

bool WeightedFairLimiter::TryAcquire(int tenant, uint64_t now_us) {
  if (tenant < 0 || static_cast<size_t>(tenant) >= buckets_.size()) {
    return true;
  }
  return buckets_[static_cast<size_t>(tenant)].TryAcquire(now_us);
}

double WeightedFairLimiter::RateOf(int tenant) const {
  if (tenant < 0 || static_cast<size_t>(tenant) >= rates_.size()) return 0.0;
  return rates_[static_cast<size_t>(tenant)];
}

DeadlineQueue::DeadlineQueue(size_t capacity, size_t lifo_threshold)
    : capacity_(std::max<size_t>(capacity, 1)),
      lifo_threshold_(lifo_threshold) {}

bool DeadlineQueue::Push(const QueuedRequest& request) {
  if (queue_.size() >= capacity_) return false;
  queue_.push_back(request);
  return true;
}

bool DeadlineQueue::Pop(uint64_t now_us, QueuedRequest* out,
                        std::vector<QueuedRequest>* shed) {
  while (!queue_.empty()) {
    // Under saturation serve the newest entry: its deadline budget is
    // still intact, where the oldest is the most likely to expire before
    // completing (serving it first converts queue time into wasted work).
    bool lifo = queue_.size() > lifo_threshold_;
    QueuedRequest candidate = lifo ? queue_.back() : queue_.front();
    if (lifo) {
      queue_.pop_back();
    } else {
      queue_.pop_front();
    }
    if (candidate.deadline_us != 0 && candidate.deadline_us <= now_us) {
      // Guaranteed-wasted work: shed before spending pipeline time on it.
      if (shed != nullptr) shed->push_back(candidate);
      continue;
    }
    *out = candidate;
    return true;
  }
  return false;
}

void DeadlineQueue::DrainTo(std::vector<QueuedRequest>* shed) {
  while (!queue_.empty()) {
    if (shed != nullptr) shed->push_back(queue_.front());
    queue_.pop_front();
  }
}

const char* AdmissionName(Admission admission) {
  switch (admission) {
    case Admission::kEnqueued:
      return "enqueued";
    case Admission::kRejectedRate:
      return "rejected_rate";
    case Admission::kRejectedQueueFull:
      return "rejected_queue_full";
    case Admission::kRejectedTenantRate:
      return "rejected_tenant_rate";
  }
  return "unknown";
}

AdmissionController::Options AdmissionController::Options::Resolve() const {
  Options resolved = *this;
  if (resolved.queue_capacity == 0) resolved.queue_capacity = 1;
  if (resolved.lifo_threshold == 0) {
    resolved.lifo_threshold = resolved.queue_capacity / 2;
  }
  return resolved;
}

AdmissionController::AdmissionController(const Options& options)
    : bucket_(options.Resolve().rate_per_sec, options.Resolve().burst),
      tenant_limiter_(options.Resolve().tenant_capacity_qps,
                      options.Resolve().tenants),
      queue_(options.Resolve().queue_capacity,
             options.Resolve().lifo_threshold) {}

Admission AdmissionController::Offer(const QueuedRequest& request,
                                     uint64_t now_us) {
  // Tenant fair share first: a hot tenant's excess is clipped before it
  // can spend any of the global tokens the other tenants share.
  if (!tenant_limiter_.TryAcquire(request.tenant, now_us)) {
    return Admission::kRejectedTenantRate;
  }
  if (!bucket_.TryAcquire(now_us)) return Admission::kRejectedRate;
  if (!queue_.Push(request)) return Admission::kRejectedQueueFull;
  return Admission::kEnqueued;
}

bool AdmissionController::Dequeue(uint64_t now_us, QueuedRequest* out,
                                  std::vector<QueuedRequest>* shed) {
  return queue_.Pop(now_us, out, shed);
}

void AdmissionController::DrainTo(std::vector<QueuedRequest>* shed) {
  queue_.DrainTo(shed);
}

}  // namespace serve
}  // namespace codes
