#include "serve/admission.h"

#include <algorithm>

namespace codes {
namespace serve {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)) {}

void TokenBucket::Refill(uint64_t now_us) {
  if (!primed_) {
    // The first observation anchors the clock; the bucket starts full so a
    // cold front end never rejects its very first burst.
    last_refill_us_ = now_us;
    primed_ = true;
    return;
  }
  if (now_us <= last_refill_us_) return;
  double elapsed_s =
      static_cast<double>(now_us - last_refill_us_) * 1e-6;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_sec_);
  last_refill_us_ = now_us;
}

bool TokenBucket::TryAcquire(uint64_t now_us) {
  if (rate_per_sec_ <= 0.0) return true;
  Refill(now_us);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::tokens_at(uint64_t now_us) const {
  if (rate_per_sec_ <= 0.0) return burst_;
  if (!primed_ || now_us <= last_refill_us_) return tokens_;
  double elapsed_s =
      static_cast<double>(now_us - last_refill_us_) * 1e-6;
  return std::min(burst_, tokens_ + elapsed_s * rate_per_sec_);
}

DeadlineQueue::DeadlineQueue(size_t capacity, size_t lifo_threshold)
    : capacity_(std::max<size_t>(capacity, 1)),
      lifo_threshold_(lifo_threshold) {}

bool DeadlineQueue::Push(const QueuedRequest& request) {
  if (queue_.size() >= capacity_) return false;
  queue_.push_back(request);
  return true;
}

bool DeadlineQueue::Pop(uint64_t now_us, QueuedRequest* out,
                        std::vector<QueuedRequest>* shed) {
  while (!queue_.empty()) {
    // Under saturation serve the newest entry: its deadline budget is
    // still intact, where the oldest is the most likely to expire before
    // completing (serving it first converts queue time into wasted work).
    bool lifo = queue_.size() > lifo_threshold_;
    QueuedRequest candidate = lifo ? queue_.back() : queue_.front();
    if (lifo) {
      queue_.pop_back();
    } else {
      queue_.pop_front();
    }
    if (candidate.deadline_us != 0 && candidate.deadline_us <= now_us) {
      // Guaranteed-wasted work: shed before spending pipeline time on it.
      if (shed != nullptr) shed->push_back(candidate);
      continue;
    }
    *out = candidate;
    return true;
  }
  return false;
}

void DeadlineQueue::DrainTo(std::vector<QueuedRequest>* shed) {
  while (!queue_.empty()) {
    if (shed != nullptr) shed->push_back(queue_.front());
    queue_.pop_front();
  }
}

const char* AdmissionName(Admission admission) {
  switch (admission) {
    case Admission::kEnqueued:
      return "enqueued";
    case Admission::kRejectedRate:
      return "rejected_rate";
    case Admission::kRejectedQueueFull:
      return "rejected_queue_full";
  }
  return "unknown";
}

AdmissionController::Options AdmissionController::Options::Resolve() const {
  Options resolved = *this;
  if (resolved.queue_capacity == 0) resolved.queue_capacity = 1;
  if (resolved.lifo_threshold == 0) {
    resolved.lifo_threshold = resolved.queue_capacity / 2;
  }
  return resolved;
}

AdmissionController::AdmissionController(const Options& options)
    : bucket_(options.Resolve().rate_per_sec, options.Resolve().burst),
      queue_(options.Resolve().queue_capacity,
             options.Resolve().lifo_threshold) {}

Admission AdmissionController::Offer(const QueuedRequest& request,
                                     uint64_t now_us) {
  if (!bucket_.TryAcquire(now_us)) return Admission::kRejectedRate;
  if (!queue_.Push(request)) return Admission::kRejectedQueueFull;
  return Admission::kEnqueued;
}

bool AdmissionController::Dequeue(uint64_t now_us, QueuedRequest* out,
                                  std::vector<QueuedRequest>* shed) {
  return queue_.Pop(now_us, out, shed);
}

void AdmissionController::DrainTo(std::vector<QueuedRequest>* shed) {
  queue_.DrainTo(shed);
}

}  // namespace serve
}  // namespace codes
