#include "serve/brownout.h"

#include <algorithm>

namespace codes {
namespace serve {

BrownoutController::BrownoutController(const Options& options)
    : options_(options) {
  options_.max_level =
      std::clamp(options_.max_level, 0, kNumBrownoutLevels - 1);
  options_.high_watermark = std::clamp(options_.high_watermark, 0.0, 1.0);
  options_.low_watermark =
      std::clamp(options_.low_watermark, 0.0, options_.high_watermark);
}

int BrownoutController::Update(double queue_fullness, uint64_t now_us) {
  if (!primed_) {
    primed_ = true;
    // Anchor the dwell clock one dwell in the past so a front end born
    // into an overload can degrade on its first observation.
    last_change_us_ = now_us >= options_.dwell_us
                          ? now_us - options_.dwell_us
                          : 0;
  }
  if (now_us - last_change_us_ < options_.dwell_us) return level_;
  if (queue_fullness >= options_.high_watermark &&
      level_ < options_.max_level) {
    ++level_;
    ++degrades_;
    last_change_us_ = now_us;
  } else if (queue_fullness <= options_.low_watermark && level_ > 0) {
    --level_;
    ++recoveries_;
    last_change_us_ = now_us;
  }
  return level_;
}

void BrownoutController::ApplyLevel(int level, ServeOptions* options) {
  options->brownout_level = level;
  if (level >= 1) options->max_icl_demos = 1;
  if (level >= 2) {
    options->max_icl_demos = 0;
    options->disable_value_retriever = true;
  }
  if (level >= 3) {
    options->top_k1_override = 2;
    options->top_k2_override = 4;
  }
  if (level >= 4) options->force_emergency_sql = true;
}

}  // namespace serve
}  // namespace codes
