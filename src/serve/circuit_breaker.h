#ifndef CODES_SERVE_CIRCUIT_BREAKER_H_
#define CODES_SERVE_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace codes {
namespace serve {

/// Breaker state machine:
///
///   Closed ──(failure ratio over window ≥ threshold)──▶ Open
///   Open ──(cooldown elapsed)──▶ HalfOpen
///   HalfOpen ──(any probe fails)──▶ Open (cooldown restarts)
///   HalfOpen ──(close_after probes succeed)──▶ Closed (window cleared)
///
/// While Open (and for non-probe traffic while HalfOpen) the owning front
/// end forces the mapped degradation-ladder rung instead of touching the
/// stage, so a persistently failing stage costs its requests nothing.
enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

/// Failure-rate circuit breaker over a sliding outcome window. Time is
/// explicit (µs) like every src/serve/ component, so virtual-time load
/// campaigns and wall-clock serving share the exact same transitions. Not
/// thread-safe; the owner serializes access.
class CircuitBreaker {
 public:
  struct Options {
    /// Sliding outcome window (ring buffer) length.
    size_t window = 32;
    /// Minimum outcomes in the window before the ratio is meaningful.
    size_t min_samples = 8;
    /// Trip when failures / outcomes ≥ this.
    double failure_threshold = 0.5;
    /// Open → HalfOpen after this long without traffic to the stage.
    uint64_t cooldown_us = 2'000'000;
    /// Probes let through per HalfOpen episode.
    int half_open_probes = 3;
    /// Probe successes needed to close (≤ half_open_probes).
    int close_after = 2;
  };

  explicit CircuitBreaker(const Options& options);

  /// True when the stage must be forced off for a request dispatched at
  /// `now_us`. Performs the Open → HalfOpen transition when the cooldown
  /// has elapsed, and meters out HalfOpen probes (a false return in
  /// HalfOpen consumes one probe slot).
  bool ShouldForce(uint64_t now_us);

  /// Feeds one finished request's outcome for this stage. Closed outcomes
  /// land in the window; HalfOpen outcomes are probe verdicts. Outcomes
  /// arriving while Open (requests admitted before the trip) are dropped —
  /// they describe the pre-trip world.
  void RecordOutcome(bool failed, uint64_t now_us);

  BreakerState state() const { return state_; }
  /// Transition counter since construction (every state change counts).
  uint64_t transitions() const { return transitions_; }

 private:
  void MoveTo(BreakerState next, uint64_t now_us);
  double FailureRatio() const;

  Options options_;
  BreakerState state_ = BreakerState::kClosed;
  /// Ring buffer of outcomes (true = failed) while Closed.
  std::vector<bool> window_;
  size_t window_next_ = 0;
  size_t window_count_ = 0;
  size_t window_failures_ = 0;
  uint64_t opened_at_us_ = 0;
  int probes_issued_ = 0;
  int probe_successes_ = 0;
  uint64_t transitions_ = 0;
};

}  // namespace serve
}  // namespace codes

#endif  // CODES_SERVE_CIRCUIT_BREAKER_H_
