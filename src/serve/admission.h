#ifndef CODES_SERVE_ADMISSION_H_
#define CODES_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace codes {
namespace serve {

/// Classic token bucket: `rate_per_sec` tokens accrue continuously up to
/// `burst`; each admitted request spends one. Time is explicit (µs) so the
/// same code runs under the virtual clock of a load campaign and the
/// steady clock of live serving — nothing in src/serve/ ever reads a real
/// clock itself.
///
/// Hardened against idle-gap overflow (ISSUE 9): refill after an
/// arbitrarily long gap saturates at `burst` even when the elapsed-time
/// arithmetic produces a non-finite intermediate, and non-finite
/// constructor parameters are sanitized. Without the guard a poisoned
/// `tokens_` (NaN compares false against every threshold) admits every
/// request forever — a mega-burst that silently bypasses admission.
class TokenBucket {
 public:
  /// `rate_per_sec` <= 0 (or non-finite) disables rate limiting
  /// (TryAcquire always succeeds); `burst` < 1 or non-finite is clamped
  /// so a legal rate can never starve every request.
  TokenBucket(double rate_per_sec, double burst);

  /// Spends one token if available at `now_us`. Monotonic `now_us`
  /// expected; a caller handing in an earlier time simply accrues nothing.
  bool TryAcquire(uint64_t now_us);

  double tokens_at(uint64_t now_us) const;

 private:
  void Refill(uint64_t now_us);

  double rate_per_sec_;
  double burst_;
  double tokens_;
  uint64_t last_refill_us_ = 0;
  bool primed_ = false;  ///< first TryAcquire anchors the clock
};

/// Weighted-fair per-tenant rate limiting, layered *under* the global
/// token bucket: tenant `t` gets a private bucket whose refill rate is
/// its weight share of `capacity_qps` (rate_t = capacity * w_t / Σw).
/// The per-tenant bucket is consulted before the global one, so a hot
/// tenant's excess is clipped at its own fair share and never drains the
/// tokens every other tenant shares — that ordering is the isolation
/// contract the multi-tenant campaign asserts (each cold tenant keeps
/// >= 80% of its isolated goodput while one tenant offers 5x its share).
///
/// Tenants are fixed at construction (the fleet configures its tenant set
/// up front); requests with an out-of-range tenant id are not limited
/// here and fall through to the global bucket.
class WeightedFairLimiter {
 public:
  struct TenantSpec {
    double weight = 1.0;  ///< relative share; <= 0 clamps to a tiny share
    double burst = 8.0;   ///< per-tenant burst allowance (tokens)
  };

  /// `capacity_qps` <= 0 disables per-tenant limiting entirely.
  WeightedFairLimiter(double capacity_qps,
                      const std::vector<TenantSpec>& tenants);

  /// Spends one of `tenant`'s tokens if available. Always true when
  /// limiting is disabled or `tenant` is out of range.
  bool TryAcquire(int tenant, uint64_t now_us);

  /// The refill rate tenant `tenant` was assigned (0 when unlimited).
  double RateOf(int tenant) const;

  size_t NumTenants() const { return buckets_.size(); }

 private:
  std::vector<TokenBucket> buckets_;
  std::vector<double> rates_;
};

/// One queued admission ticket. The front end keeps request payloads; the
/// queue only orders ids and enforces deadlines.
struct QueuedRequest {
  uint64_t id = 0;
  uint64_t enqueue_us = 0;
  uint64_t deadline_us = 0;  ///< absolute; 0 means no deadline
  /// Owning tenant (index into the front end's tenant table); -1 for
  /// single-tenant traffic. Carried through shed/expire paths so every
  /// outcome attributes to the tenant that offered the request.
  int tenant = -1;
};

/// Bounded deadline-aware queue with a LIFO-under-saturation policy:
///
///  * Push refuses when `capacity` entries are waiting (reject-on-full —
///    the caller sheds instead of building an unbounded backlog).
///  * Pop first drops every entry whose deadline has already passed
///    (shedding work that is guaranteed wasted *before* spending pipeline
///    time on it), then serves FIFO while the queue is shallow and
///    LIFO once depth crosses `lifo_threshold` — under saturation the
///    newest request is the one whose deadline budget is still intact,
///    so serving it yields goodput where FIFO would serve a doomed
///    request first.
class DeadlineQueue {
 public:
  /// `lifo_threshold` is a depth (entries); depths strictly above it pop
  /// newest-first. 0 means always-LIFO.
  DeadlineQueue(size_t capacity, size_t lifo_threshold);

  bool Push(const QueuedRequest& request);

  /// Pops the next serveable request into `out`; expired entries removed
  /// along the way are appended to `shed`. False when nothing is left.
  bool Pop(uint64_t now_us, QueuedRequest* out,
           std::vector<QueuedRequest>* shed);

  /// Removes every remaining entry into `shed` (campaign drain).
  void DrainTo(std::vector<QueuedRequest>* shed);

  size_t depth() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t lifo_threshold_;
  std::deque<QueuedRequest> queue_;
};

/// Admission decision for one offered request.
enum class Admission {
  kEnqueued = 0,       ///< waiting in the deadline queue
  kRejectedRate,       ///< global token bucket empty
  kRejectedQueueFull,  ///< queue at capacity
  kRejectedTenantRate  ///< owning tenant's fair-share bucket empty
};

const char* AdmissionName(Admission admission);

/// Token bucket + deadline queue glued into the front door. Not
/// thread-safe by itself: ServeFrontEnd serializes access (live serving)
/// or the single DES driver thread owns it (load campaigns).
class AdmissionController {
 public:
  struct Options {
    double rate_per_sec = 0.0;  ///< <= 0: no rate limit
    double burst = 8.0;
    size_t queue_capacity = 64;
    /// Queue depths strictly above this pop LIFO; defaults to half the
    /// capacity when left 0 (see Resolve()).
    size_t lifo_threshold = 0;

    /// Per-tenant weighted-fair layer. `tenant_capacity_qps` <= 0 (the
    /// default) disables it; otherwise each configured tenant gets
    /// capacity * weight / Σweights as its private refill rate, checked
    /// before the global bucket.
    double tenant_capacity_qps = 0.0;
    std::vector<WeightedFairLimiter::TenantSpec> tenants;

    Options Resolve() const;
  };

  explicit AdmissionController(const Options& options);

  Admission Offer(const QueuedRequest& request, uint64_t now_us);
  bool Dequeue(uint64_t now_us, QueuedRequest* out,
               std::vector<QueuedRequest>* shed);
  void DrainTo(std::vector<QueuedRequest>* shed);

  /// Rate-limit check alone, bypassing the queue — for serving modes
  /// where the caller is its own waiting slot (ServeFrontEnd::Serve).
  /// Returns the would-be admission class: kEnqueued means the token was
  /// granted. The tenant layer, when configured, is consulted first.
  Admission AcquireToken(uint64_t now_us, int tenant = -1) {
    if (!tenant_limiter_.TryAcquire(tenant, now_us)) {
      return Admission::kRejectedTenantRate;
    }
    return bucket_.TryAcquire(now_us) ? Admission::kEnqueued
                                      : Admission::kRejectedRate;
  }

  size_t queue_depth() const { return queue_.depth(); }

 private:
  TokenBucket bucket_;
  WeightedFairLimiter tenant_limiter_;
  DeadlineQueue queue_;
};

}  // namespace serve
}  // namespace codes

#endif  // CODES_SERVE_ADMISSION_H_
