#ifndef CODES_SERVE_ADMISSION_H_
#define CODES_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace codes {
namespace serve {

/// Classic token bucket: `rate_per_sec` tokens accrue continuously up to
/// `burst`; each admitted request spends one. Time is explicit (µs) so the
/// same code runs under the virtual clock of a load campaign and the
/// steady clock of live serving — nothing in src/serve/ ever reads a real
/// clock itself.
class TokenBucket {
 public:
  /// `rate_per_sec` <= 0 disables rate limiting (TryAcquire always
  /// succeeds); `burst` < 1 is clamped to 1 so a legal rate can never
  /// starve every request.
  TokenBucket(double rate_per_sec, double burst);

  /// Spends one token if available at `now_us`. Monotonic `now_us`
  /// expected; a caller handing in an earlier time simply accrues nothing.
  bool TryAcquire(uint64_t now_us);

  double tokens_at(uint64_t now_us) const;

 private:
  void Refill(uint64_t now_us);

  double rate_per_sec_;
  double burst_;
  double tokens_;
  uint64_t last_refill_us_ = 0;
  bool primed_ = false;  ///< first TryAcquire anchors the clock
};

/// One queued admission ticket. The front end keeps request payloads; the
/// queue only orders ids and enforces deadlines.
struct QueuedRequest {
  uint64_t id = 0;
  uint64_t enqueue_us = 0;
  uint64_t deadline_us = 0;  ///< absolute; 0 means no deadline
};

/// Bounded deadline-aware queue with a LIFO-under-saturation policy:
///
///  * Push refuses when `capacity` entries are waiting (reject-on-full —
///    the caller sheds instead of building an unbounded backlog).
///  * Pop first drops every entry whose deadline has already passed
///    (shedding work that is guaranteed wasted *before* spending pipeline
///    time on it), then serves FIFO while the queue is shallow and
///    LIFO once depth crosses `lifo_threshold` — under saturation the
///    newest request is the one whose deadline budget is still intact,
///    so serving it yields goodput where FIFO would serve a doomed
///    request first.
class DeadlineQueue {
 public:
  /// `lifo_threshold` is a depth (entries); depths strictly above it pop
  /// newest-first. 0 means always-LIFO.
  DeadlineQueue(size_t capacity, size_t lifo_threshold);

  bool Push(const QueuedRequest& request);

  /// Pops the next serveable request into `out`; expired entries removed
  /// along the way are appended to `shed`. False when nothing is left.
  bool Pop(uint64_t now_us, QueuedRequest* out,
           std::vector<QueuedRequest>* shed);

  /// Removes every remaining entry into `shed` (campaign drain).
  void DrainTo(std::vector<QueuedRequest>* shed);

  size_t depth() const { return queue_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t lifo_threshold_;
  std::deque<QueuedRequest> queue_;
};

/// Admission decision for one offered request.
enum class Admission {
  kEnqueued = 0,      ///< waiting in the deadline queue
  kRejectedRate,      ///< token bucket empty
  kRejectedQueueFull  ///< queue at capacity
};

const char* AdmissionName(Admission admission);

/// Token bucket + deadline queue glued into the front door. Not
/// thread-safe by itself: ServeFrontEnd serializes access (live serving)
/// or the single DES driver thread owns it (load campaigns).
class AdmissionController {
 public:
  struct Options {
    double rate_per_sec = 0.0;  ///< <= 0: no rate limit
    double burst = 8.0;
    size_t queue_capacity = 64;
    /// Queue depths strictly above this pop LIFO; defaults to half the
    /// capacity when left 0 (see Resolve()).
    size_t lifo_threshold = 0;

    Options Resolve() const;
  };

  explicit AdmissionController(const Options& options);

  Admission Offer(const QueuedRequest& request, uint64_t now_us);
  bool Dequeue(uint64_t now_us, QueuedRequest* out,
               std::vector<QueuedRequest>* shed);
  void DrainTo(std::vector<QueuedRequest>* shed);

  /// Rate-limit check alone, bypassing the queue — for serving modes
  /// where the caller is its own waiting slot (ServeFrontEnd::Serve).
  bool AcquireToken(uint64_t now_us) { return bucket_.TryAcquire(now_us); }

  size_t queue_depth() const { return queue_.depth(); }

 private:
  TokenBucket bucket_;
  DeadlineQueue queue_;
};

}  // namespace serve
}  // namespace codes

#endif  // CODES_SERVE_ADMISSION_H_
