#ifndef CODES_SERVE_LOAD_GEN_H_
#define CODES_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "retrieval/value_retriever.h"
#include "serve/front_end.h"

namespace codes {
namespace serve {

/// One tenant's slice of a multi-tenant campaign's offered traffic.
struct TenantTraffic {
  std::string name;
  /// Relative arrival share outside burst windows. A tenant whose share
  /// exceeds its admission weight is "hot": open-loop traffic above its
  /// fair rate that the weighted-fair limiter must clip.
  double share = 1.0;
  /// Relative share during burst windows (adversarial tenants spike
  /// here); negative = same as `share`.
  double burst_share = -1.0;
  /// Restrict this tenant's questions to dev samples with this db_index;
  /// -1 = draw from the whole dev set.
  int db_index = -1;
};

/// Configuration of one open-loop saturation campaign.
struct LoadGenOptions {
  uint64_t seed = 1;
  int num_requests = 1000;
  /// Open-loop offered rate: arrivals keep coming at this (virtual) rate
  /// no matter how far behind service falls — the scenario that collapses
  /// an unprotected server.
  double offered_qps = 200.0;
  /// Concurrent virtual service slots ("model replicas").
  int virtual_workers = 4;
  /// Virtual service time of a full-richness (level-0) request; higher
  /// brownout levels cost a fixed fraction of this (see
  /// VirtualServiceUs). Capacity ≈ virtual_workers * 1e6 / service_base_us.
  uint64_t service_base_us = 20'000;
  /// Per-request deadline, measured from arrival (0 = none).
  uint64_t deadline_us = 200'000;
  /// Real execution threads for the pipeline work (never affects the
  /// campaign's decisions or digest — that is the point).
  int threads = 1;
  FrontEndOptions front_end;
  /// Optional failpoint campaign spec, configured with `seed`.
  std::string failpoint_spec;

  /// Fraction of requests mutated by dataset/perturb's online question
  /// mutations (synonym / typo / paraphrase / value-swap / schema-noise)
  /// before dispatch — `codes_load --adv`. Every request draws its
  /// mutation coin, kind, and seed from an rng stream independent of the
  /// arrival clock, so changing the rate changes *which* requests mutate
  /// without moving a single arrival. 0 = legacy clean campaign,
  /// byte-identical digest.
  double adv_rate = 0.0;
  /// Run each dispatched question through the serve-side hardening pass
  /// (sanitize, suspect verdict, canonical-retry marking, brownout floor)
  /// on the DES thread, as a live front door would. Off by default so
  /// campaigns recorded before hardening keep their digests.
  bool harden = false;

  /// Multi-tenant traffic mix; empty = legacy single-tenant campaign
  /// whose report, Summary, and digest are byte-identical to builds that
  /// predate tenancy. Tenant ids are indexes into this vector and must
  /// line up with FrontEndOptions::tenant_names and the admission specs.
  std::vector<TenantTraffic> tenants;
  /// Burst windows for adversarial tenants: the first `burst_duty`
  /// fraction of every `burst_period_us` of virtual time uses each
  /// tenant's burst_share instead of share. 0 disables windows.
  uint64_t burst_period_us = 0;
  double burst_duty = 0.0;
  /// Called on the DES thread when a multi-tenant request is dispatched;
  /// returns the tenant's value-retriever lease, which the campaign pins
  /// until the request's virtual completion and injects as
  /// ServeOptions::value_retriever. This is how a FleetManager plugs in
  /// without the serving layer depending on the fleet layer. Null
  /// function (or null return) = use the pipeline's own retriever cache.
  std::function<std::shared_ptr<const ValueRetriever>(int tenant)>
      tenant_attach;
};

/// What one campaign did, accounted per request (independent of the
/// global metrics registry, which the campaign also feeds).
struct LoadReport {
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t rejected_rate = 0;
  uint64_t rejected_queue_full = 0;
  /// Clipped by the per-tenant weighted-fair limiter before the global
  /// bucket was consulted. Always 0 in single-tenant campaigns.
  uint64_t rejected_tenant_rate = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_drain = 0;
  uint64_t served_within_deadline = 0;
  uint64_t served_late = 0;
  uint64_t verified = 0;
  /// Served within deadline AND execution-verified — the numerator of
  /// goodput-under-perturbation. Plain goodput cannot see quality loss:
  /// virtual service time never consults verification, so a perturbed
  /// campaign only moves this counter.
  uint64_t verified_within_deadline = 0;
  /// Adversarial traffic accounting; all zero in clean campaigns.
  uint64_t adv_offered = 0;        ///< requests mutated before dispatch
  uint64_t suspect = 0;            ///< flagged suspect by hardening at dispatch
  uint64_t canonical_retries = 0;  ///< canonical-question retries spent
  uint64_t canonical_served = 0;   ///< retries whose SQL verified
  uint64_t served_at_level[kNumBrownoutLevels] = {0, 0, 0, 0, 0};
  uint64_t brownout_degrades = 0;
  uint64_t brownout_recoveries = 0;
  uint64_t breaker_transitions[kNumServeStages] = {0, 0, 0};
  /// Virtual time of the last processed event.
  uint64_t end_us = 0;
  /// FNV-1a over one outcome line per request, folded in request-id order
  /// — the number CI compares across real thread counts. Multi-tenant
  /// campaigns fold the tenant name into each line; single-tenant
  /// campaigns produce the exact pre-tenancy byte stream.
  uint64_t digest = 0;

  /// Per-tenant slice of the same accounting; row i is tenant id i.
  /// Empty for single-tenant campaigns. The per-tenant invariant
  /// admitted + rejected + shed == offered holds for every row.
  struct TenantRow {
    std::string name;
    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;  ///< rate + queue_full + tenant_rate
    uint64_t shed = 0;      ///< deadline + drain
    uint64_t served_within_deadline = 0;
  };
  std::vector<TenantRow> tenants;

  /// Requests served before their deadline per virtual second.
  double GoodputQps() const;
  /// Requests served before their deadline *and* execution-verified, per
  /// virtual second: the goodput-under-perturbation number codes_load
  /// reports and BENCH_throughput.json tracks.
  double VerifiedGoodputQps() const;
  /// Same, for one tenant row.
  double TenantGoodputQps(size_t row) const;
  /// Deterministic multi-line rendering (campaign stdout).
  std::string Summary() const;
};

/// Virtual service cost of request `id` at brownout `level`: a pure
/// function of (seed, id, level) — NEVER of real execution time — which is
/// what lets the discrete-event simulation schedule completions without
/// waiting on real work. Brownout levels are cheaper by fixed multipliers
/// (that is the reward the controller is steering toward), with ±25%
/// per-request jitter.
uint64_t VirtualServiceUs(uint64_t seed, uint64_t id, int level,
                          uint64_t base_us);

/// Runs one open-loop campaign as a virtual-time discrete-event
/// simulation. A single driver thread makes every control decision
/// (admission, shedding, brownout, breaker transitions) at virtual
/// timestamps derived purely from the seed; the actual PredictGuarded
/// executions are farmed out to a `threads`-wide pool and their outcomes
/// consumed only when the corresponding virtual completion event is
/// processed, in virtual-time order. The report (and the serve.* metric
/// deltas) are therefore byte-identical at any `threads` value — the same
/// determinism contract as the failpoint framework.
///
/// The pipeline must be fully set up (classifier, FineTune) before the
/// call. When `options.failpoint_spec` is non-empty it is configured for
/// the campaign and cleared afterwards.
LoadReport RunLoadCampaign(const CodesPipeline& pipeline,
                           const Text2SqlBenchmark& bench,
                           const LoadGenOptions& options);

}  // namespace serve
}  // namespace codes

#endif  // CODES_SERVE_LOAD_GEN_H_
