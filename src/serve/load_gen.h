#ifndef CODES_SERVE_LOAD_GEN_H_
#define CODES_SERVE_LOAD_GEN_H_

#include <cstdint>
#include <string>

#include "core/pipeline.h"
#include "serve/front_end.h"

namespace codes {
namespace serve {

/// Configuration of one open-loop saturation campaign.
struct LoadGenOptions {
  uint64_t seed = 1;
  int num_requests = 1000;
  /// Open-loop offered rate: arrivals keep coming at this (virtual) rate
  /// no matter how far behind service falls — the scenario that collapses
  /// an unprotected server.
  double offered_qps = 200.0;
  /// Concurrent virtual service slots ("model replicas").
  int virtual_workers = 4;
  /// Virtual service time of a full-richness (level-0) request; higher
  /// brownout levels cost a fixed fraction of this (see
  /// VirtualServiceUs). Capacity ≈ virtual_workers * 1e6 / service_base_us.
  uint64_t service_base_us = 20'000;
  /// Per-request deadline, measured from arrival (0 = none).
  uint64_t deadline_us = 200'000;
  /// Real execution threads for the pipeline work (never affects the
  /// campaign's decisions or digest — that is the point).
  int threads = 1;
  FrontEndOptions front_end;
  /// Optional failpoint campaign spec, configured with `seed`.
  std::string failpoint_spec;
};

/// What one campaign did, accounted per request (independent of the
/// global metrics registry, which the campaign also feeds).
struct LoadReport {
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t rejected_rate = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_drain = 0;
  uint64_t served_within_deadline = 0;
  uint64_t served_late = 0;
  uint64_t verified = 0;
  uint64_t served_at_level[kNumBrownoutLevels] = {0, 0, 0, 0, 0};
  uint64_t brownout_degrades = 0;
  uint64_t brownout_recoveries = 0;
  uint64_t breaker_transitions[kNumServeStages] = {0, 0, 0};
  /// Virtual time of the last processed event.
  uint64_t end_us = 0;
  /// FNV-1a over one outcome line per request, folded in request-id order
  /// — the number CI compares across real thread counts.
  uint64_t digest = 0;

  /// Requests served before their deadline per virtual second.
  double GoodputQps() const;
  /// Deterministic multi-line rendering (campaign stdout).
  std::string Summary() const;
};

/// Virtual service cost of request `id` at brownout `level`: a pure
/// function of (seed, id, level) — NEVER of real execution time — which is
/// what lets the discrete-event simulation schedule completions without
/// waiting on real work. Brownout levels are cheaper by fixed multipliers
/// (that is the reward the controller is steering toward), with ±25%
/// per-request jitter.
uint64_t VirtualServiceUs(uint64_t seed, uint64_t id, int level,
                          uint64_t base_us);

/// Runs one open-loop campaign as a virtual-time discrete-event
/// simulation. A single driver thread makes every control decision
/// (admission, shedding, brownout, breaker transitions) at virtual
/// timestamps derived purely from the seed; the actual PredictGuarded
/// executions are farmed out to a `threads`-wide pool and their outcomes
/// consumed only when the corresponding virtual completion event is
/// processed, in virtual-time order. The report (and the serve.* metric
/// deltas) are therefore byte-identical at any `threads` value — the same
/// determinism contract as the failpoint framework.
///
/// The pipeline must be fully set up (classifier, FineTune) before the
/// call. When `options.failpoint_spec` is non-empty it is configured for
/// the campaign and cleared afterwards.
LoadReport RunLoadCampaign(const CodesPipeline& pipeline,
                           const Text2SqlBenchmark& bench,
                           const LoadGenOptions& options);

}  // namespace serve
}  // namespace codes

#endif  // CODES_SERVE_LOAD_GEN_H_
