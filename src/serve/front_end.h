#ifndef CODES_SERVE_FRONT_END_H_
#define CODES_SERVE_FRONT_END_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "serve/admission.h"
#include "serve/brownout.h"
#include "serve/circuit_breaker.h"
#include "serve/harden.h"

namespace codes {
namespace serve {

/// Pipeline stages guarded by a circuit breaker, each mapped to the ladder
/// rung the front end forces while its breaker is open:
///
///   kClassifier      → force_classifier_fallback (full schema)
///   kValueRetrieval  → force_value_fallback      (no matched values)
///   kGeneration      → force_emergency_sql       (trivial query)
enum class ServeStage : int {
  kClassifier = 0,
  kValueRetrieval,
  kGeneration,
  kNumStages,  // sentinel
};

inline constexpr int kNumServeStages =
    static_cast<int>(ServeStage::kNumStages);

const char* ServeStageName(ServeStage stage);

/// Configuration of the overload-protection front end.
struct FrontEndOptions {
  AdmissionController::Options admission;
  /// One breaker per stage, all sharing this tuning.
  CircuitBreaker::Options breaker;
  BrownoutController::Options brownout;
  /// Execution budgets stamped into every request's ServeOptions.
  ExecLimits limits;
  /// Deadline assigned to requests that arrive without one (0 = none).
  uint64_t default_deadline_us = 0;
  /// Request-hardening front door (UTF-8 repair, byte cap, control strip,
  /// anomaly scoring). Applied on the wall-clock paths before the
  /// pipeline sees the question; the explicit-time API leaves hardening
  /// to its single owner (codes_load hardens on the DES driver thread)
  /// and only supplies MarkSuspect for the verdict.
  HardenOptions harden;
  /// Tenant display names, parallel to admission.tenants. When non-empty,
  /// every offer/admit/reject/shed is also attributed to a
  /// serve.tenant.<name>.* counter family so the global sum invariant can
  /// be checked per tenant.
  std::vector<std::string> tenant_names;
};

/// The overload-protection front end between callers and
/// CodesPipeline::PredictGuarded: token-bucket admission, a bounded
/// deadline-aware queue, per-stage circuit breakers, and the adaptive
/// brownout controller, all emitting the serve.* metric families.
///
/// Metric accounting contract (asserted by codes_load and overload CI):
/// every offered request lands in exactly one of admitted / rejected /
/// shed, so
///
///   serve.admitted + serve.rejected + serve.shed == serve.offered
///
/// with serve.rejected = serve.rejected.rate + serve.rejected.queue_full
/// + serve.rejected.tenant_rate and serve.shed = serve.shed.deadline +
/// serve.shed.drain. With tenants configured the same invariant holds for
/// every serve.tenant.<name>.{offered,admitted,rejected,shed} family —
/// shed and expired requests attribute to the tenant that offered them,
/// not to whichever request's dequeue happened to flush them.
///
/// Two usage modes share all decision logic:
///
///  * Explicit-time API (Offer/Dequeue/OptionsFor/Complete/Drain): the
///    caller owns the clock. codes_load drives it with a virtual clock
///    from a single DES thread, which is what makes saturation campaigns
///    byte-identical at any real thread count. NOT thread-safe; a single
///    owner serializes calls.
///  * Wall-clock API (Serve/TryServeAsync): thread-safe convenience
///    wrappers that derive time from a steady clock and use the caller
///    (or the thread pool's bounded queue) as the waiting room.
class ServeFrontEnd {
 public:
  /// `pipeline` and `bench` must outlive the front end; they are only
  /// dereferenced by the wall-clock serving paths.
  ServeFrontEnd(const CodesPipeline* pipeline, const Text2SqlBenchmark* bench,
                const FrontEndOptions& options);

  // --- explicit-time API (single owner) -------------------------------

  /// Offers request `id` at `now_us`. kEnqueued means it is waiting in
  /// the deadline queue; a rejection is final (metrics recorded here).
  /// `tenant` (an index into FrontEndOptions::tenant_names) attributes
  /// the request to its owner; -1 means untenanted traffic.
  Admission Offer(uint64_t id, uint64_t deadline_us, uint64_t now_us,
                  int tenant = -1);

  /// Pops the next serveable request, shedding expired entries along the
  /// way (each shed is recorded, and appended to `shed` when non-null so
  /// the caller can account per-request). True = `out` is admitted
  /// (counted, wait time observed) and the caller must execute it with
  /// OptionsFor() and report back via Complete().
  bool Dequeue(uint64_t now_us, QueuedRequest* out,
               std::vector<QueuedRequest>* shed = nullptr);

  /// ServeOptions for a request dispatched now: base limits + brownout
  /// richness level + breaker-forced stage skips.
  ServeOptions OptionsFor(uint64_t now_us);

  /// Feeds a finished request's report back into the breakers (stages the
  /// front end itself forced or disabled are skipped — their "failures"
  /// are self-inflicted) and the per-level served counters.
  void Complete(const ServeOptions& options_used, const ServeReport& report,
                uint64_t now_us);

  /// Sheds everything still queued (campaign end); returns the count and
  /// appends the victims to `shed` when non-null.
  size_t Drain(uint64_t now_us, std::vector<QueuedRequest>* shed = nullptr);

  /// Feeds queue fullness into the brownout controller and refreshes the
  /// serve.queue.depth / serve.brownout.level gauges. Call whenever depth
  /// changes (arrivals, dispatches).
  void ObserveQueue(uint64_t now_us);

  /// Marks a request suspect after its hardening verdict: stamps the
  /// suspect flag and the canonical retry question into `options`, and
  /// raises its brownout richness floor to HardenOptions::
  /// suspect_floor_level (never lowers an already deeper brownout).
  /// Thread-safe and lock-free — it only reads construction-time options
  /// and bumps the serve.adv.pre_degraded counter — so both the DES
  /// driver and the wall-clock paths call it directly.
  void MarkSuspect(ServeOptions* options,
                   std::string canonical_question) const;

  int brownout_level() const { return brownout_.level(); }
  const BrownoutController& brownout() const { return brownout_; }
  BreakerState breaker_state(ServeStage stage) const {
    return breakers_[static_cast<int>(stage)].state();
  }
  uint64_t breaker_transitions(ServeStage stage) const {
    return breakers_[static_cast<int>(stage)].transitions();
  }
  size_t queue_depth() const { return admission_.queue_depth(); }

  // --- wall-clock API (thread-safe) -----------------------------------

  /// Synchronous guarded serving with admission control. There is no
  /// queue on this path — the calling thread is the waiting slot, so
  /// "queue depth" is the number of in-flight Serve calls and admission
  /// rejects once `queue_capacity` callers are already inside. Returns
  /// kUnavailable on rejection (no SQL produced), OK otherwise.
  Status Serve(const Text2SqlSample& sample, std::string* sql,
               ServeReport* report = nullptr);

  /// Bounded asynchronous serving: admission (token bucket) now, then
  /// TrySubmit to `pool` with the admission queue capacity as the backlog
  /// bound. False = rejected (rate or pool backlog full); when true,
  /// `done` eventually runs on a pool thread with the outcome — status is
  /// kDeadlineExceeded (empty SQL) when the request expired in the
  /// backlog and was shed without touching the pipeline.
  bool TryServeAsync(
      const Text2SqlSample& sample, ThreadPool* pool,
      std::function<void(const Status&, const std::string&,
                         const ServeReport&)> done);

 private:
  /// Per-tenant slice of the admission counters (the serve.tenant.<name>.*
  /// family); pointers into the global registry, resolved once at
  /// construction.
  struct TenantCounters {
    Counter* offered;
    Counter* admitted;
    Counter* rejected;
    Counter* shed;
  };

  uint64_t WallNowUs() const;

  /// The counter slice for `tenant`, or nullptr for untenanted traffic.
  TenantCounters* TenantOf(int tenant);

  Admission OfferLocked(uint64_t id, uint64_t deadline_us, uint64_t now_us,
                        int tenant);
  ServeOptions OptionsForLocked(uint64_t now_us);
  void CompleteLocked(const ServeOptions& options_used,
                      const ServeReport& report, uint64_t now_us);
  void ObserveFullnessLocked(double fullness, uint64_t now_us);
  /// Emits breaker transition counters for `stage` when `before` differs
  /// from the breaker's current state.
  void NoteBreakerTransition(ServeStage stage, BreakerState before);

  const CodesPipeline* pipeline_;
  const Text2SqlBenchmark* bench_;
  FrontEndOptions options_;

  /// Serializes the wall-clock paths; the explicit-time API relies on its
  /// single owner instead (a DES driver never contends).
  std::mutex mu_;
  AdmissionController admission_;
  std::vector<TenantCounters> tenant_metrics_;
  CircuitBreaker breakers_[kNumServeStages];
  BrownoutController brownout_;
  size_t in_flight_ = 0;  ///< wall-clock Serve calls currently inside
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace serve
}  // namespace codes

#endif  // CODES_SERVE_FRONT_END_H_
