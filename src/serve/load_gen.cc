#include "serve/load_gen.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <future>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dataset/perturb.h"
#include "serve/harden.h"

namespace codes {
namespace serve {

namespace {

/// FNV-1a fold, same constants as the chaos digest.
struct Digest {
  uint64_t value = 1469598103934665603ULL;
  void Add(const std::string& s) {
    for (char c : s) {
      value ^= static_cast<unsigned char>(c);
      value *= 1099511628211ULL;
    }
  }
};

enum class Outcome {
  kPending = 0,
  kRejectedRate,
  kRejectedQueueFull,
  kRejectedTenantRate,
  kShedDeadline,
  kShedDrain,
  kServed,
};

/// Per-request campaign record. The future carries the real execution's
/// completion; sql/report are written by the pool task before the promise
/// is fulfilled, so the DES thread reads them only after wait().
struct Slot {
  Outcome outcome = Outcome::kPending;
  ServeOptions options;
  ServeReport report;
  std::string sql;
  /// Owns the request's sample when it differs from the dev set's copy
  /// (mutated and/or hardened questions); the pool task reads it until
  /// the promise is fulfilled, and slots never reallocate.
  Text2SqlSample sample_storage;
  uint64_t deadline_us = 0;
  uint64_t finish_us = 0;
  std::future<void> ready;
  /// Fleet value-retriever lease, pinned from dispatch until the virtual
  /// completion so eviction can never dangle an in-flight request.
  std::shared_ptr<const ValueRetriever> lease;
};

/// DES event: completions sort before arrivals at the same virtual
/// timestamp (a freed worker is visible to the admission decision made in
/// the same instant), ids break remaining ties. Total order = determinism.
struct Event {
  uint64_t time_us;
  int kind;  ///< 0 = completion, 1 = arrival
  uint64_t id;
  bool operator>(const Event& other) const {
    if (time_us != other.time_us) return time_us > other.time_us;
    if (kind != other.kind) return kind > other.kind;
    return id > other.id;
  }
};

}  // namespace

uint64_t VirtualServiceUs(uint64_t seed, uint64_t id, int level,
                          uint64_t base_us) {
  static constexpr double kLevelCost[kNumBrownoutLevels] = {1.0, 0.8, 0.6,
                                                           0.45, 0.08};
  int l = std::clamp(level, 0, kNumBrownoutLevels - 1);
  Rng rng(seed ^ (id * 0x9E3779B97F4A7C15ULL) ^ 0x5EBFULL);
  double jitter = rng.UniformDouble(0.75, 1.25);
  double us = static_cast<double>(base_us) * kLevelCost[l] * jitter;
  return std::max<uint64_t>(1, static_cast<uint64_t>(us));
}

double LoadReport::GoodputQps() const {
  if (end_us == 0) return 0.0;
  return static_cast<double>(served_within_deadline) /
         (static_cast<double>(end_us) * 1e-6);
}

double LoadReport::VerifiedGoodputQps() const {
  if (end_us == 0) return 0.0;
  return static_cast<double>(verified_within_deadline) /
         (static_cast<double>(end_us) * 1e-6);
}

double LoadReport::TenantGoodputQps(size_t row) const {
  if (end_us == 0 || row >= tenants.size()) return 0.0;
  return static_cast<double>(tenants[row].served_within_deadline) /
         (static_cast<double>(end_us) * 1e-6);
}

std::string LoadReport::Summary() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "admission: admitted=%" PRIu64 " rejected_rate=%" PRIu64
                " rejected_queue_full=%" PRIu64 " shed_deadline=%" PRIu64
                " shed_drain=%" PRIu64 " (offered=%" PRIu64 ")\n",
                admitted, rejected_rate, rejected_queue_full, shed_deadline,
                shed_drain, offered);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "served: within_deadline=%" PRIu64 " late=%" PRIu64
                " verified=%" PRIu64 "\n",
                served_within_deadline, served_late, verified);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "brownout: served l0=%" PRIu64 " l1=%" PRIu64 " l2=%" PRIu64
                " l3=%" PRIu64 " l4=%" PRIu64 " degrades=%" PRIu64
                " recoveries=%" PRIu64 "\n",
                served_at_level[0], served_at_level[1], served_at_level[2],
                served_at_level[3], served_at_level[4], brownout_degrades,
                brownout_recoveries);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "breakers: transitions classifier=%" PRIu64
                " value_retrieval=%" PRIu64 " generation=%" PRIu64 "\n",
                breaker_transitions[0], breaker_transitions[1],
                breaker_transitions[2]);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "goodput: %.1f qps over %.3f virtual seconds\n",
                GoodputQps(), static_cast<double>(end_us) * 1e-6);
  out += buf;
  // The adversarial block renders only when adversarial machinery fired,
  // so clean campaigns keep their pre-hardening stdout byte-for-byte.
  if (adv_offered > 0 || suspect > 0) {
    std::snprintf(buf, sizeof(buf),
                  "adversarial: offered=%" PRIu64 " suspect=%" PRIu64
                  " canonical_retries=%" PRIu64 " canonical_served=%" PRIu64
                  "\n",
                  adv_offered, suspect, canonical_retries, canonical_served);
    out += buf;
    std::snprintf(buf, sizeof(buf), "verified goodput: %.1f qps\n",
                  VerifiedGoodputQps());
    out += buf;
  }
  if (!tenants.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "admission: rejected_tenant_rate=%" PRIu64 "\n",
                  rejected_tenant_rate);
    out += buf;
    for (size_t i = 0; i < tenants.size(); ++i) {
      const TenantRow& row = tenants[i];
      std::snprintf(buf, sizeof(buf),
                    "tenant %s: offered=%" PRIu64 " admitted=%" PRIu64
                    " rejected=%" PRIu64 " shed=%" PRIu64
                    " within_deadline=%" PRIu64 " goodput=%.1f qps\n",
                    row.name.c_str(), row.offered, row.admitted,
                    row.rejected, row.shed, row.served_within_deadline,
                    TenantGoodputQps(i));
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "digest=%016" PRIx64 "\n", digest);
  out += buf;
  return out;
}

LoadReport RunLoadCampaign(const CodesPipeline& pipeline,
                           const Text2SqlBenchmark& bench,
                           const LoadGenOptions& options) {
  LoadReport report;
  if (options.num_requests <= 0 || bench.dev.empty()) return report;

  if (!options.failpoint_spec.empty()) {
    Status configured =
        Failpoints::Configure(options.failpoint_spec, options.seed);
    CODES_CHECK(configured.ok());
  }

  ServeFrontEnd front_end(&pipeline, &bench, options.front_end);
  ThreadPool pool(std::max(options.threads, 1));
  int free_workers = std::max(options.virtual_workers, 1);

  // The arrival schedule is a pure function of the seed: exponential
  // interarrival gaps at the offered rate, materialized up front.
  size_t n = static_cast<size_t>(options.num_requests);
  std::vector<Slot> slots(n);
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  // Multi-tenant campaigns assign every request a tenant and a
  // tenant-local sample, from an rng stream independent of the arrival
  // clock: the arrival schedule of a mix is identical to the
  // single-tenant schedule at the same seed, only the labels differ.
  bool multi_tenant = !options.tenants.empty();
  std::vector<int> tenant_of(n, -1);
  std::vector<size_t> sample_of(n, 0);
  std::vector<std::vector<size_t>> tenant_samples;
  if (multi_tenant) {
    tenant_samples.resize(options.tenants.size());
    for (size_t t = 0; t < options.tenants.size(); ++t) {
      int want_db = options.tenants[t].db_index;
      for (size_t i = 0; i < bench.dev.size(); ++i) {
        if (want_db < 0 || bench.dev[i].db_index == want_db) {
          tenant_samples[t].push_back(i);
        }
      }
      // A tenant with no matching dev samples draws from the whole set
      // rather than crashing the campaign.
      if (tenant_samples[t].empty()) {
        for (size_t i = 0; i < bench.dev.size(); ++i) {
          tenant_samples[t].push_back(i);
        }
      }
    }
  }
  // Adversarial mix: which requests mutate, how, and into what — all
  // derived up front on this thread from an rng stream independent of the
  // arrival clock and the tenant mix. Each id draws coin, kind, and
  // mutation seed unconditionally, so two campaigns differing only in
  // adv_rate mutate nested subsets of the same requests.
  std::vector<uint8_t> is_adv(n, 0);
  std::vector<std::string> mutated(n);
  {
    Rng rng(options.seed ^ 0xA881ULL);
    Rng mix_rng(options.seed ^ 0x7E4A17ULL);
    Rng adv_rng(options.seed ^ 0xADF17ULL);
    double rate = std::max(options.offered_qps, 1e-6);
    double t = 0.0;
    std::vector<double> weights(options.tenants.size(), 0.0);
    for (size_t id = 0; id < n; ++id) {
      double u = rng.UniformDouble();
      t += -std::log(1.0 - u) / rate * 1e6;
      uint64_t at = static_cast<uint64_t>(t);
      events.push(Event{at, /*kind=*/1, id});
      if (multi_tenant) {
        bool in_burst =
            options.burst_period_us > 0 && options.burst_duty > 0.0 &&
            static_cast<double>(at % options.burst_period_us) <
                options.burst_duty *
                    static_cast<double>(options.burst_period_us);
        for (size_t w = 0; w < options.tenants.size(); ++w) {
          const TenantTraffic& tt = options.tenants[w];
          double share = (in_burst && tt.burst_share >= 0.0)
                             ? tt.burst_share
                             : tt.share;
          weights[w] = std::max(share, 0.0);
        }
        size_t tenant = mix_rng.WeightedIndex(weights);
        tenant_of[id] = static_cast<int>(tenant);
        sample_of[id] = tenant_samples[tenant][mix_rng.Index(
            tenant_samples[tenant].size())];
      } else {
        sample_of[id] = id % bench.dev.size();
      }
      if (options.adv_rate > 0.0) {
        double coin = adv_rng.UniformDouble();
        auto kind = static_cast<QuestionMutation>(
            adv_rng.Index(static_cast<size_t>(kNumQuestionMutations)));
        uint64_t mutation_seed = adv_rng.Next();
        if (coin < options.adv_rate) {
          is_adv[id] = 1;
          mutated[id] = MutateQuestion(bench.dev[sample_of[id]].question,
                                       kind, mutation_seed);
        }
      }
    }
  }

  // Dispatches queued requests onto free virtual workers. Control flow
  // runs entirely in virtual time on this thread; only the pipeline work
  // itself runs on the pool.
  auto dispatch = [&](uint64_t now_us) {
    QueuedRequest next;
    std::vector<QueuedRequest> expired;
    while (free_workers > 0 && front_end.Dequeue(now_us, &next, &expired)) {
      uint64_t id = next.id;
      Slot& slot = slots[id];
      slot.options = front_end.OptionsFor(now_us);
      if (multi_tenant && options.tenant_attach) {
        // Fleet attach happens here, on the DES thread at a virtual
        // timestamp — so the attach/evict sequence is a pure function of
        // the seed no matter how many real threads execute the work.
        slot.lease = options.tenant_attach(tenant_of[id]);
        slot.options.value_retriever = slot.lease.get();
      }
      // Mutation and hardening happen here, on the DES thread, before
      // the virtual cost is priced: a suspect's raised brownout floor
      // makes it cheaper in virtual time exactly as it would be in real
      // serving.
      const Text2SqlSample* sample = &bench.dev[sample_of[id]];
      if (is_adv[id] != 0 || options.harden) {
        slot.sample_storage = *sample;
        if (is_adv[id] != 0) slot.sample_storage.question = mutated[id];
        if (options.harden) {
          HardenResult hardened = HardenQuestion(
              slot.sample_storage.question, options.front_end.harden);
          if (hardened.sanitized != slot.sample_storage.question) {
            slot.sample_storage.question = hardened.sanitized;
          }
          if (hardened.suspect) {
            front_end.MarkSuspect(&slot.options,
                                  std::move(hardened.canonical));
          }
        }
        sample = &slot.sample_storage;
      }
      uint64_t service = VirtualServiceUs(options.seed, id,
                                          slot.options.brownout_level,
                                          options.service_base_us);
      auto done = std::make_shared<std::promise<void>>();
      slot.ready = done->get_future();
      pool.Submit([&pipeline, &bench, sample, &slot,
                   done = std::move(done)]() {
        slot.sql = pipeline.PredictGuarded(bench, *sample, slot.options,
                                           &slot.report);
        done->set_value();
      });
      --free_workers;
      events.push(Event{now_us + service, /*kind=*/0, id});
    }
    for (const QueuedRequest& victim : expired) {
      slots[victim.id].outcome = Outcome::kShedDeadline;
    }
  };

  uint64_t now_us = 0;
  while (!events.empty()) {
    Event event = events.top();
    events.pop();
    now_us = event.time_us;
    if (event.kind == 1) {  // arrival
      uint64_t deadline =
          options.deadline_us > 0 ? now_us + options.deadline_us : 0;
      slots[event.id].deadline_us = deadline;
      Admission admission =
          front_end.Offer(event.id, deadline, now_us, tenant_of[event.id]);
      if (admission == Admission::kRejectedRate) {
        slots[event.id].outcome = Outcome::kRejectedRate;
      } else if (admission == Admission::kRejectedQueueFull) {
        slots[event.id].outcome = Outcome::kRejectedQueueFull;
      } else if (admission == Admission::kRejectedTenantRate) {
        slots[event.id].outcome = Outcome::kRejectedTenantRate;
      }
    } else {  // completion
      Slot& slot = slots[event.id];
      // The virtual completion instant is fixed; the real work just has
      // to have happened by the time we consume its outcome.
      slot.ready.wait();
      slot.outcome = Outcome::kServed;
      slot.finish_us = now_us;
      front_end.Complete(slot.options, slot.report, now_us);
      slot.lease.reset();  // release the fleet lease at completion
      ++free_workers;
    }
    front_end.ObserveQueue(now_us);
    dispatch(now_us);
  }

  // Anything still queued at campaign end (all-expired tails are shed at
  // dequeue above, so this is only reachable with exotic settings) is
  // drained as shed.
  std::vector<QueuedRequest> leftovers;
  front_end.Drain(now_us, &leftovers);
  for (const QueuedRequest& victim : leftovers) {
    slots[victim.id].outcome = Outcome::kShedDrain;
  }

  if (!options.failpoint_spec.empty()) Failpoints::Clear();

  // Accounting + digest, folded in request-id order (never in completion
  // order, which real scheduling could perturb... it cannot, but the id
  // fold makes that a non-question).
  Digest digest;
  report.offered = n;
  if (multi_tenant) {
    report.tenants.resize(options.tenants.size());
    for (size_t t = 0; t < options.tenants.size(); ++t) {
      report.tenants[t].name = options.tenants[t].name;
    }
  }
  char line[64];
  for (size_t id = 0; id < n; ++id) {
    const Slot& slot = slots[id];
    LoadReport::TenantRow* row =
        multi_tenant ? &report.tenants[static_cast<size_t>(tenant_of[id])]
                     : nullptr;
    std::snprintf(line, sizeof(line), "%zu ", id);
    digest.Add(line);
    if (is_adv[id] != 0) {
      // The mutation label is part of the determinism contract for
      // adversarial campaigns; clean requests (and clean campaigns) fold
      // the exact pre-adversarial byte stream.
      digest.Add("adv ");
      ++report.adv_offered;
    }
    if (row != nullptr) {
      // Tenant labels are part of the determinism contract in a mix:
      // a reassignment across thread counts must poison the digest.
      digest.Add("t=");
      digest.Add(row->name);
      digest.Add(" ");
      ++row->offered;
    }
    switch (slot.outcome) {
      case Outcome::kPending:
        digest.Add("pending\n");  // unreachable; poisons the digest if not
        break;
      case Outcome::kRejectedRate:
        ++report.rejected_rate;
        if (row != nullptr) ++row->rejected;
        digest.Add("rejected_rate\n");
        break;
      case Outcome::kRejectedQueueFull:
        ++report.rejected_queue_full;
        if (row != nullptr) ++row->rejected;
        digest.Add("rejected_queue_full\n");
        break;
      case Outcome::kRejectedTenantRate:
        ++report.rejected_tenant_rate;
        if (row != nullptr) ++row->rejected;
        digest.Add("rejected_tenant_rate\n");
        break;
      case Outcome::kShedDeadline:
        ++report.shed_deadline;
        if (row != nullptr) ++row->shed;
        digest.Add("shed_deadline\n");
        break;
      case Outcome::kShedDrain:
        ++report.shed_drain;
        if (row != nullptr) ++row->shed;
        digest.Add("shed_drain\n");
        break;
      case Outcome::kServed: {
        ++report.admitted;
        if (row != nullptr) ++row->admitted;
        int level = std::clamp(slot.options.brownout_level, 0,
                               kNumBrownoutLevels - 1);
        ++report.served_at_level[level];
        if (slot.deadline_us == 0 || slot.finish_us <= slot.deadline_us) {
          ++report.served_within_deadline;
          if (row != nullptr) ++row->served_within_deadline;
          if (slot.report.execution_verified) {
            ++report.verified_within_deadline;
          }
        } else {
          ++report.served_late;
        }
        if (slot.report.execution_verified) ++report.verified;
        if (slot.options.suspect) ++report.suspect;
        report.canonical_retries +=
            static_cast<uint64_t>(slot.report.canonical_retries);
        if (slot.report.canonical_served) ++report.canonical_served;
        std::snprintf(line, sizeof(line), "served t=%" PRIu64 " ",
                      slot.finish_us);
        digest.Add(line);
        digest.Add(slot.report.ToString());
        digest.Add(" | ");
        digest.Add(slot.sql);
        digest.Add("\n");
        break;
      }
    }
  }
  report.brownout_degrades = front_end.brownout().degrades();
  report.brownout_recoveries = front_end.brownout().recoveries();
  for (int s = 0; s < kNumServeStages; ++s) {
    report.breaker_transitions[s] =
        front_end.breaker_transitions(static_cast<ServeStage>(s));
  }
  report.end_us = now_us;
  report.digest = digest.value;
  return report;
}

}  // namespace serve
}  // namespace codes
