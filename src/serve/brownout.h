#ifndef CODES_SERVE_BROWNOUT_H_
#define CODES_SERVE_BROWNOUT_H_

#include <cstdint>

#include "core/pipeline.h"

namespace codes {
namespace serve {

/// Number of brownout levels (0 = full richness .. 4 = emergency SQL).
inline constexpr int kNumBrownoutLevels = 5;

/// Adaptive prompt-richness controller. Under load the prompt knobs the
/// paper tunes for quality (ICL demonstrations, retrieved values, schema
/// top-k1/k2) become a cost dial: each level strips the next-cheapest
/// source of quality so admitted requests keep meeting their deadlines
/// instead of the process rejecting everything.
///
///   L0  full richness (byte-identical to an unprotected request)
///   L1  at most one ICL demonstration
///   L2  no demonstrations, no retrieved values
///   L3  + schema filter tightened to top_k1=2 / top_k2=4
///   L4  emergency SQL only (the one level that fires a ladder rung)
///
/// Levels move one step at a time on a queue-fullness signal with two
/// guards against flapping: watermark hysteresis (degrade above `high`,
/// recover below `low`, hold in between) and a minimum dwell time between
/// consecutive changes. Explicit-time like the rest of src/serve/; not
/// thread-safe.
class BrownoutController {
 public:
  struct Options {
    int max_level = kNumBrownoutLevels - 1;
    /// Queue fullness (depth / capacity) at or above which richness steps
    /// down one level.
    double high_watermark = 0.75;
    /// Fullness at or below which richness steps back up one level.
    double low_watermark = 0.25;
    /// Minimum time between consecutive level changes.
    uint64_t dwell_us = 250'000;
  };

  explicit BrownoutController(const Options& options);

  /// Feeds one observation of queue fullness in [0, 1]; returns the level
  /// in force after the observation.
  int Update(double queue_fullness, uint64_t now_us);

  int level() const { return level_; }
  /// Times richness stepped down (level went up) / back up.
  uint64_t degrades() const { return degrades_; }
  uint64_t recoveries() const { return recoveries_; }

  /// Writes the richness overrides of `level` into `options` (including
  /// options->brownout_level). Level 0 leaves everything untouched.
  static void ApplyLevel(int level, ServeOptions* options);

 private:
  Options options_;
  int level_ = 0;
  uint64_t last_change_us_ = 0;
  bool primed_ = false;  ///< first Update anchors the dwell clock
  uint64_t degrades_ = 0;
  uint64_t recoveries_ = 0;
};

}  // namespace serve
}  // namespace codes

#endif  // CODES_SERVE_BROWNOUT_H_
