#include "serve/circuit_breaker.h"

#include <algorithm>

namespace codes {
namespace serve {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const Options& options) : options_(options) {
  options_.window = std::max<size_t>(options_.window, 1);
  options_.min_samples =
      std::min(std::max<size_t>(options_.min_samples, 1), options_.window);
  options_.half_open_probes = std::max(options_.half_open_probes, 1);
  options_.close_after =
      std::min(std::max(options_.close_after, 1), options_.half_open_probes);
  window_.assign(options_.window, false);
}

void CircuitBreaker::MoveTo(BreakerState next, uint64_t now_us) {
  state_ = next;
  ++transitions_;
  if (next == BreakerState::kOpen) {
    opened_at_us_ = now_us;
  } else if (next == BreakerState::kHalfOpen) {
    probes_issued_ = 0;
    probe_successes_ = 0;
  } else {  // kClosed: forget the failing era entirely
    window_.assign(options_.window, false);
    window_next_ = 0;
    window_count_ = 0;
    window_failures_ = 0;
  }
}

double CircuitBreaker::FailureRatio() const {
  if (window_count_ == 0) return 0.0;
  return static_cast<double>(window_failures_) /
         static_cast<double>(window_count_);
}

bool CircuitBreaker::ShouldForce(uint64_t now_us) {
  if (state_ == BreakerState::kOpen) {
    if (now_us - opened_at_us_ >= options_.cooldown_us) {
      MoveTo(BreakerState::kHalfOpen, now_us);
    } else {
      return true;
    }
  }
  if (state_ == BreakerState::kHalfOpen) {
    if (probes_issued_ < options_.half_open_probes) {
      ++probes_issued_;
      return false;  // this request is a probe: let it touch the stage
    }
    return true;  // probe quota spent; wait for their verdicts
  }
  return false;
}

void CircuitBreaker::RecordOutcome(bool failed, uint64_t now_us) {
  switch (state_) {
    case BreakerState::kOpen:
      // Straggler from before the trip; its world no longer exists.
      return;
    case BreakerState::kHalfOpen:
      if (failed) {
        MoveTo(BreakerState::kOpen, now_us);
      } else if (++probe_successes_ >= options_.close_after) {
        MoveTo(BreakerState::kClosed, now_us);
      }
      return;
    case BreakerState::kClosed:
      break;
  }
  if (window_count_ == options_.window) {
    // Ring slot being overwritten leaves the window.
    if (window_[window_next_]) --window_failures_;
  } else {
    ++window_count_;
  }
  window_[window_next_] = failed;
  if (failed) ++window_failures_;
  window_next_ = (window_next_ + 1) % options_.window;
  if (window_count_ >= options_.min_samples &&
      FailureRatio() >= options_.failure_threshold) {
    MoveTo(BreakerState::kOpen, now_us);
  }
}

}  // namespace serve
}  // namespace codes
