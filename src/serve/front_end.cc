#include "serve/front_end.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/metrics.h"

namespace codes {
namespace serve {

namespace {

/// The serve.* admission/shedding/brownout/breaker metric families. The
/// counters obey the sum invariant documented on ServeFrontEnd; gauges
/// mirror the controllers' current state; the wait histogram is observed
/// in the caller's clock domain (virtual µs under codes_load, wall µs in
/// live serving).
struct FrontEndMetrics {
  Counter& offered = MetricsRegistry::Global().GetCounter("serve.offered");
  Counter& admitted = MetricsRegistry::Global().GetCounter("serve.admitted");
  Counter& rejected = MetricsRegistry::Global().GetCounter("serve.rejected");
  Counter& rejected_rate =
      MetricsRegistry::Global().GetCounter("serve.rejected.rate");
  Counter& rejected_queue_full =
      MetricsRegistry::Global().GetCounter("serve.rejected.queue_full");
  Counter& rejected_tenant_rate =
      MetricsRegistry::Global().GetCounter("serve.rejected.tenant_rate");
  Counter& shed = MetricsRegistry::Global().GetCounter("serve.shed");
  Counter& shed_deadline =
      MetricsRegistry::Global().GetCounter("serve.shed.deadline");
  Counter& shed_drain =
      MetricsRegistry::Global().GetCounter("serve.shed.drain");
  Histogram& queue_wait_us =
      MetricsRegistry::Global().GetHistogram("serve.queue.wait_us");
  Gauge& queue_depth =
      MetricsRegistry::Global().GetGauge("serve.queue.depth");
  Gauge& brownout_level =
      MetricsRegistry::Global().GetGauge("serve.brownout.level");
  Counter& brownout_degrade =
      MetricsRegistry::Global().GetCounter("serve.brownout.degrade");
  Counter& brownout_recover =
      MetricsRegistry::Global().GetCounter("serve.brownout.recover");
  /// Requests whose hardening verdict raised their brownout floor before
  /// dispatch (the suspect side of the serve.adv.* partition; the
  /// clean/suspect split itself is recorded by the pipeline).
  Counter& adv_pre_degraded =
      MetricsRegistry::Global().GetCounter("serve.adv.pre_degraded");
  Counter* served_level[kNumBrownoutLevels] = {
      &MetricsRegistry::Global().GetCounter("serve.brownout.served.l0"),
      &MetricsRegistry::Global().GetCounter("serve.brownout.served.l1"),
      &MetricsRegistry::Global().GetCounter("serve.brownout.served.l2"),
      &MetricsRegistry::Global().GetCounter("serve.brownout.served.l3"),
      &MetricsRegistry::Global().GetCounter("serve.brownout.served.l4")};
  Counter* breaker_to_open[kNumServeStages] = {
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.classifier.to_open"),
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.value_retrieval.to_open"),
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.generation.to_open")};
  Counter* breaker_to_half_open[kNumServeStages] = {
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.classifier.to_half_open"),
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.value_retrieval.to_half_open"),
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.generation.to_half_open")};
  Counter* breaker_to_closed[kNumServeStages] = {
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.classifier.to_closed"),
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.value_retrieval.to_closed"),
      &MetricsRegistry::Global().GetCounter(
          "serve.breaker.generation.to_closed")};
};

FrontEndMetrics& Metrics() {
  static FrontEndMetrics* metrics = new FrontEndMetrics();  // never freed
  return *metrics;
}

}  // namespace

const char* ServeStageName(ServeStage stage) {
  switch (stage) {
    case ServeStage::kClassifier:
      return "classifier";
    case ServeStage::kValueRetrieval:
      return "value_retrieval";
    case ServeStage::kGeneration:
      return "generation";
    case ServeStage::kNumStages:
      break;
  }
  return "unknown";
}

ServeFrontEnd::ServeFrontEnd(const CodesPipeline* pipeline,
                             const Text2SqlBenchmark* bench,
                             const FrontEndOptions& options)
    : pipeline_(pipeline),
      bench_(bench),
      options_(options),
      admission_(options.admission),
      breakers_{CircuitBreaker(options.breaker),
                CircuitBreaker(options.breaker),
                CircuitBreaker(options.breaker)},
      brownout_(options.brownout),
      epoch_(std::chrono::steady_clock::now()) {
  options_.admission = options.admission.Resolve();
  MetricsRegistry& registry = MetricsRegistry::Global();
  tenant_metrics_.reserve(options_.tenant_names.size());
  for (const std::string& name : options_.tenant_names) {
    std::string prefix = "serve.tenant." + name + ".";
    tenant_metrics_.push_back(
        TenantCounters{&registry.GetCounter(prefix + "offered"),
                       &registry.GetCounter(prefix + "admitted"),
                       &registry.GetCounter(prefix + "rejected"),
                       &registry.GetCounter(prefix + "shed")});
  }
}

ServeFrontEnd::TenantCounters* ServeFrontEnd::TenantOf(int tenant) {
  if (tenant < 0 || static_cast<size_t>(tenant) >= tenant_metrics_.size()) {
    return nullptr;
  }
  return &tenant_metrics_[static_cast<size_t>(tenant)];
}

uint64_t ServeFrontEnd::WallNowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ServeFrontEnd::NoteBreakerTransition(ServeStage stage,
                                          BreakerState before) {
  int s = static_cast<int>(stage);
  BreakerState after = breakers_[s].state();
  if (after == before) return;
  FrontEndMetrics& m = Metrics();
  switch (after) {
    case BreakerState::kOpen:
      m.breaker_to_open[s]->Increment();
      break;
    case BreakerState::kHalfOpen:
      m.breaker_to_half_open[s]->Increment();
      break;
    case BreakerState::kClosed:
      m.breaker_to_closed[s]->Increment();
      break;
  }
}

Admission ServeFrontEnd::OfferLocked(uint64_t id, uint64_t deadline_us,
                                     uint64_t now_us, int tenant) {
  FrontEndMetrics& m = Metrics();
  m.offered.Increment();
  TenantCounters* t = TenantOf(tenant);
  if (t != nullptr) t->offered->Increment();
  QueuedRequest request;
  request.id = id;
  request.enqueue_us = now_us;
  request.deadline_us = deadline_us;
  request.tenant = tenant;
  Admission admission = admission_.Offer(request, now_us);
  switch (admission) {
    case Admission::kEnqueued:
      break;  // counted as admitted or shed when it leaves the queue
    case Admission::kRejectedRate:
      m.rejected.Increment();
      m.rejected_rate.Increment();
      if (t != nullptr) t->rejected->Increment();
      break;
    case Admission::kRejectedQueueFull:
      m.rejected.Increment();
      m.rejected_queue_full.Increment();
      if (t != nullptr) t->rejected->Increment();
      break;
    case Admission::kRejectedTenantRate:
      m.rejected.Increment();
      m.rejected_tenant_rate.Increment();
      if (t != nullptr) t->rejected->Increment();
      break;
  }
  return admission;
}

Admission ServeFrontEnd::Offer(uint64_t id, uint64_t deadline_us,
                               uint64_t now_us, int tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  return OfferLocked(id, deadline_us, now_us, tenant);
}

bool ServeFrontEnd::Dequeue(uint64_t now_us, QueuedRequest* out,
                            std::vector<QueuedRequest>* shed) {
  std::lock_guard<std::mutex> lock(mu_);
  FrontEndMetrics& m = Metrics();
  std::vector<QueuedRequest> local_shed;
  std::vector<QueuedRequest>& expired =
      shed != nullptr ? *shed : local_shed;
  size_t before = expired.size();
  bool got = admission_.Dequeue(now_us, out, &expired);
  size_t n_shed = expired.size() - before;
  if (n_shed > 0) {
    m.shed.Increment(n_shed);
    m.shed_deadline.Increment(n_shed);
    // Attribute each expired entry to the tenant that offered it — the
    // per-tenant sum invariant only holds when shed work lands on its
    // owner, not on whichever request's dequeue flushed it.
    for (size_t i = before; i < expired.size(); ++i) {
      TenantCounters* t = TenantOf(expired[i].tenant);
      if (t != nullptr) t->shed->Increment();
    }
  }
  if (got) {
    m.admitted.Increment();
    TenantCounters* t = TenantOf(out->tenant);
    if (t != nullptr) t->admitted->Increment();
    m.queue_wait_us.Observe(
        static_cast<double>(now_us - out->enqueue_us));
  }
  return got;
}

ServeOptions ServeFrontEnd::OptionsForLocked(uint64_t now_us) {
  ServeOptions options;
  options.limits = options_.limits;
  if (options_.default_deadline_us > 0 &&
      options.limits.deadline_seconds <= 0.0) {
    options.limits.deadline_seconds =
        static_cast<double>(options_.default_deadline_us) * 1e-6;
  }

  BrownoutController::ApplyLevel(brownout_.level(), &options);

  // Breaker consults are skipped for stages this request will not touch
  // anyway (brownout already stripped them) — consulting would burn
  // half-open probe slots on requests that can never report a verdict.
  if (!options.force_emergency_sql) {
    auto consult = [&](ServeStage stage, bool* force) {
      int s = static_cast<int>(stage);
      BreakerState before = breakers_[s].state();
      *force = breakers_[s].ShouldForce(now_us);
      NoteBreakerTransition(stage, before);
    };
    consult(ServeStage::kClassifier, &options.force_classifier_fallback);
    if (!options.disable_value_retriever) {
      consult(ServeStage::kValueRetrieval, &options.force_value_fallback);
    }
    consult(ServeStage::kGeneration, &options.force_emergency_sql);
  }
  return options;
}

ServeOptions ServeFrontEnd::OptionsFor(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  return OptionsForLocked(now_us);
}

void ServeFrontEnd::CompleteLocked(const ServeOptions& options_used,
                                   const ServeReport& report,
                                   uint64_t now_us) {
  FrontEndMetrics& m = Metrics();
  int level = std::clamp(options_used.brownout_level, 0,
                         kNumBrownoutLevels - 1);
  m.served_level[level]->Increment();

  // Breaker feed. A stage the front end itself forced off (or brownout
  // stripped) reports a fallback rung, but that is self-inflicted, not
  // evidence the stage is failing — skip it. force_emergency_sql skips
  // every stage: nothing ran.
  auto feed = [&](ServeStage stage, bool failed) {
    int s = static_cast<int>(stage);
    BreakerState before = breakers_[s].state();
    breakers_[s].RecordOutcome(failed, now_us);
    NoteBreakerTransition(stage, before);
  };
  if (options_used.force_emergency_sql) return;
  if (!options_used.force_classifier_fallback) {
    feed(ServeStage::kClassifier,
         report.Fired(ServeRung::kClassifierFallback));
  }
  if (!options_used.force_value_fallback &&
      !options_used.disable_value_retriever) {
    feed(ServeStage::kValueRetrieval,
         report.Fired(ServeRung::kValueFallback));
  }
  feed(ServeStage::kGeneration, !report.execution_verified);
}

void ServeFrontEnd::Complete(const ServeOptions& options_used,
                             const ServeReport& report, uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  CompleteLocked(options_used, report, now_us);
}

size_t ServeFrontEnd::Drain(uint64_t now_us,
                            std::vector<QueuedRequest>* shed) {
  (void)now_us;
  std::lock_guard<std::mutex> lock(mu_);
  FrontEndMetrics& m = Metrics();
  std::vector<QueuedRequest> local_shed;
  std::vector<QueuedRequest>& victims =
      shed != nullptr ? *shed : local_shed;
  size_t before = victims.size();
  admission_.DrainTo(&victims);
  size_t n_shed = victims.size() - before;
  if (n_shed > 0) {
    m.shed.Increment(n_shed);
    m.shed_drain.Increment(n_shed);
    for (size_t i = before; i < victims.size(); ++i) {
      TenantCounters* t = TenantOf(victims[i].tenant);
      if (t != nullptr) t->shed->Increment();
    }
  }
  m.queue_depth.Set(0);
  return n_shed;
}

void ServeFrontEnd::ObserveFullnessLocked(double fullness, uint64_t now_us) {
  FrontEndMetrics& m = Metrics();
  int before = brownout_.level();
  int after = brownout_.Update(fullness, now_us);
  if (after > before) m.brownout_degrade.Increment();
  if (after < before) m.brownout_recover.Increment();
  m.brownout_level.Set(after);
}

void ServeFrontEnd::MarkSuspect(ServeOptions* options,
                                std::string canonical_question) const {
  options->suspect = true;
  options->canonical_question = std::move(canonical_question);
  int floor = std::clamp(options_.harden.suspect_floor_level, 0,
                         kNumBrownoutLevels - 1);
  // Suspect requests never run richer than the floor, but an overload
  // brownout that is already deeper stays in charge.
  if (options->brownout_level < floor) {
    BrownoutController::ApplyLevel(floor, options);
  }
  Metrics().adv_pre_degraded.Increment();
}

void ServeFrontEnd::ObserveQueue(uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  FrontEndMetrics& m = Metrics();
  size_t depth = admission_.queue_depth();
  m.queue_depth.Set(static_cast<int64_t>(depth));
  double fullness = static_cast<double>(depth) /
                    static_cast<double>(options_.admission.queue_capacity);
  ObserveFullnessLocked(fullness, now_us);
}

Status ServeFrontEnd::Serve(const Text2SqlSample& sample, std::string* sql,
                            ServeReport* report) {
  FrontEndMetrics& m = Metrics();
  // Hardening is pure — run it outside the mutex so hostile input never
  // extends the critical section.
  HardenResult hardened;
  if (options_.harden.enabled) {
    hardened = HardenQuestion(sample.question, options_.harden);
  }
  uint64_t now = WallNowUs();
  ServeOptions options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    m.offered.Increment();
    if (admission_.AcquireToken(now) != Admission::kEnqueued) {
      m.rejected.Increment();
      m.rejected_rate.Increment();
      return Status::ResourceExhausted("rate limited");
    }
    if (in_flight_ >= options_.admission.queue_capacity) {
      m.rejected.Increment();
      m.rejected_queue_full.Increment();
      return Status::ResourceExhausted("serving at capacity");
    }
    // The calling thread is the queue slot: fullness = concurrent callers.
    ObserveFullnessLocked(
        static_cast<double>(in_flight_) /
            static_cast<double>(options_.admission.queue_capacity),
        now);
    options = OptionsForLocked(now);
    m.admitted.Increment();
    ++in_flight_;
  }

  const Text2SqlSample* request = &sample;
  Text2SqlSample sanitized_sample;
  if (options_.harden.enabled) {
    if (hardened.sanitized != sample.question) {
      sanitized_sample = sample;
      sanitized_sample.question = hardened.sanitized;
      request = &sanitized_sample;
    }
    if (hardened.suspect) {
      MarkSuspect(&options, std::move(hardened.canonical));
    }
  }

  ServeReport scratch;
  ServeReport& rep = report != nullptr ? *report : scratch;
  std::string out =
      pipeline_->PredictGuarded(*bench_, *request, options, &rep);

  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    CompleteLocked(options, rep, WallNowUs());
  }
  if (sql != nullptr) *sql = std::move(out);
  return Status::Ok();
}

bool ServeFrontEnd::TryServeAsync(
    const Text2SqlSample& sample, ThreadPool* pool,
    std::function<void(const Status&, const std::string&,
                       const ServeReport&)> done) {
  FrontEndMetrics& m = Metrics();
  uint64_t now = WallNowUs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    m.offered.Increment();
    if (admission_.AcquireToken(now) != Admission::kEnqueued) {
      m.rejected.Increment();
      m.rejected_rate.Increment();
      return false;
    }
  }
  uint64_t deadline = options_.default_deadline_us > 0
                          ? now + options_.default_deadline_us
                          : 0;
  // The pool's bounded queue is the waiting room; the task re-checks the
  // deadline on dequeue, exactly like DeadlineQueue::Pop sheds expired
  // entries before spending pipeline time on them.
  auto task = [this, sample, done = std::move(done), enqueued = now,
               deadline]() {
    FrontEndMetrics& metrics = Metrics();
    uint64_t start = WallNowUs();
    ServeOptions options;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (deadline != 0 && start >= deadline) {
        metrics.shed.Increment();
        metrics.shed_deadline.Increment();
      } else {
        metrics.admitted.Increment();
        metrics.queue_wait_us.Observe(static_cast<double>(start - enqueued));
        options = OptionsForLocked(start);
      }
    }
    if (deadline != 0 && start >= deadline) {
      done(Status::Timeout("shed: deadline expired in backlog"), "",
           ServeReport());
      return;
    }
    const Text2SqlSample* request = &sample;
    Text2SqlSample sanitized_sample;
    if (options_.harden.enabled) {
      HardenResult hardened = HardenQuestion(sample.question, options_.harden);
      if (hardened.sanitized != sample.question) {
        sanitized_sample = sample;
        sanitized_sample.question = hardened.sanitized;
        request = &sanitized_sample;
      }
      if (hardened.suspect) {
        MarkSuspect(&options, std::move(hardened.canonical));
      }
    }
    ServeReport report;
    std::string sql =
        pipeline_->PredictGuarded(*bench_, *request, options, &report);
    {
      std::lock_guard<std::mutex> lock(mu_);
      CompleteLocked(options, report, WallNowUs());
    }
    done(Status::Ok(), sql, report);
  };
  if (!pool->TrySubmit(std::move(task), options_.admission.queue_capacity)) {
    std::lock_guard<std::mutex> lock(mu_);
    m.rejected.Increment();
    m.rejected_queue_full.Increment();
    return false;
  }
  return true;
}

}  // namespace serve
}  // namespace codes
