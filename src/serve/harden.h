#ifndef CODES_SERVE_HARDEN_H_
#define CODES_SERVE_HARDEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace codes {
namespace serve {

/// Tuning of the request-hardening front door (DESIGN.md section 17).
/// Hardening is a pure per-request transform: no locks, no globals, so
/// the DES load generator can apply it on its driver thread and campaigns
/// stay byte-identical at any real thread count.
struct HardenOptions {
  /// Master switch. Off = questions flow through untouched (the legacy
  /// serving path, byte-for-byte).
  bool enabled = true;
  /// Hard byte cap applied after UTF-8 repair. Longer questions are
  /// truncated at a code-point boundary — never mid-sequence — and
  /// flagged suspect.
  size_t max_question_bytes = 4096;
  /// Anomaly score at or above which a structurally clean question is
  /// still treated as suspect (see AnomalyScore).
  double anomaly_threshold = 0.5;
  /// Brownout floor for suspect requests: they enter PredictGuarded at
  /// least this degraded (level 2 = no demonstrations, no retrieved
  /// values), so hostile input never burns full prompt richness.
  int suspect_floor_level = 2;
};

/// What the hardening pass did to one question (bit flags).
enum HardenFlag : uint32_t {
  kHardenRepairedUtf8 = 1u << 0,       ///< ill-formed bytes -> U+FFFD
  kHardenTruncated = 1u << 1,          ///< byte cap applied
  kHardenStrippedControl = 1u << 2,    ///< C0/DEL controls removed
  kHardenStrippedZeroWidth = 1u << 3,  ///< zero-width code points removed
  kHardenFoldedConfusable = 1u << 4,   ///< homoglyphs folded to ASCII
  kHardenCollapsedWhitespace = 1u << 5,
  kHardenAnomalous = 1u << 6,  ///< anomaly score >= threshold
};

/// The two-tier result of hardening one question.
///
/// `sanitized` is what the pipeline serves: UTF-8 repaired, byte-capped,
/// control characters stripped. For clean traffic it is byte-identical to
/// the input, which is what keeps the paper's behaviour (and every
/// committed digest) intact. `canonical` is the aggressive rewrite held
/// in reserve: zero-width characters deleted, confusable code points
/// (fullwidth forms, curly quotes, NBSP) folded to ASCII, whitespace
/// collapsed. A suspect request whose beam fails verification is retried
/// once against `canonical` before falling to the emergency rungs.
struct HardenResult {
  std::string sanitized;
  std::string canonical;
  double anomaly = 0.0;
  uint32_t flags = 0;
  /// True when any structural repair fired or the anomaly score crossed
  /// the threshold. Suspect requests are pre-degraded and counted in
  /// serve.adv.suspect (clean ones in serve.adv.clean).
  bool suspect = false;
};

/// Hardens one question. Pure function of (question, options).
HardenResult HardenQuestion(std::string_view question,
                            const HardenOptions& options);

/// Cheap anomaly score in [0, 1] over a sanitized question: byte-class
/// entropy collapse (all-one-class spam), longest-run repetition, token
/// blowup (unbrokenly long "words" that explode the tokenizer), and
/// non-ASCII density. Natural ASCII questions (accents included) score
/// well under 0.5; adversarial padding, repeated-char floods, and
/// non-ASCII-dominated text score above it. The latter is deliberately
/// conservative: a suspect request is pre-degraded and retry-eligible,
/// never rejected, so the cost of flagging unsegmented CJK is one rung of
/// prompt richness, not an outage. Exposed for tests and the bench.
double AnomalyScore(std::string_view question);

}  // namespace serve
}  // namespace codes

#endif  // CODES_SERVE_HARDEN_H_
