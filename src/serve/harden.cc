#include "serve/harden.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace codes {
namespace serve {

namespace {

/// Decodes the (already validated) UTF-8 sequence at `s[i]` into a code
/// point, advancing `*len` to its byte length. Sanitized input only.
uint32_t DecodeUtf8(std::string_view s, size_t i, size_t* len) {
  unsigned char b0 = static_cast<unsigned char>(s[i]);
  if (b0 < 0x80) {
    *len = 1;
    return b0;
  }
  size_t n = (b0 >= 0xF0) ? 4 : (b0 >= 0xE0) ? 3 : 2;
  uint32_t cp = b0 & (0x7Fu >> n);
  for (size_t k = 1; k < n && i + k < s.size(); ++k) {
    cp = (cp << 6) | (static_cast<unsigned char>(s[i + k]) & 0x3Fu);
  }
  *len = n;
  return cp;
}

void EncodeUtf8(uint32_t cp, std::string* out) {
  if (cp < 0x80) {
    *out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    *out += static_cast<char>(0xC0 | (cp >> 6));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    *out += static_cast<char>(0xE0 | (cp >> 12));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (cp >> 18));
    *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

bool IsZeroWidth(uint32_t cp) {
  return cp == 0x200B || cp == 0x200C || cp == 0x200D ||  // ZWSP/ZWNJ/ZWJ
         cp == 0xFEFF || cp == 0x00AD;                    // BOM, soft hyphen
}

/// Folds a confusable code point to its ASCII stand-in; returns 0 when
/// `cp` is not a confusable we fold. Deliberately small: fullwidth forms,
/// typographic quotes/dashes, and exotic spaces cover the perturbations
/// dataset/perturb emits and the common copy-paste hostiles.
uint32_t FoldConfusable(uint32_t cp) {
  if (cp >= 0xFF01 && cp <= 0xFF5E) return cp - 0xFEE0;  // fullwidth ASCII
  if (cp == 0x00A0 || (cp >= 0x2000 && cp <= 0x200A) || cp == 0x202F ||
      cp == 0x3000) {
    return ' ';  // NBSP, en/em/thin spaces, ideographic space
  }
  if (cp >= 0x2018 && cp <= 0x201B) return '\'';  // curly single quotes
  if (cp >= 0x201C && cp <= 0x201F) return '"';   // curly double quotes
  if (cp >= 0x2010 && cp <= 0x2015) return '-';   // hyphens and dashes
  return 0;
}

}  // namespace

double AnomalyScore(std::string_view question) {
  if (question.empty()) return 0.0;

  // Byte-class histogram over code-unit starts (continuation bytes are
  // part of their lead byte's character, not separate evidence).
  enum { kLower, kUpper, kDigit, kSpace, kPunct, kNonAscii, kNumClasses };
  size_t counts[kNumClasses] = {0, 0, 0, 0, 0, 0};
  size_t units = 0;
  for (char ch : question) {
    unsigned char c = static_cast<unsigned char>(ch);
    if ((c & 0xC0) == 0x80) continue;
    ++units;
    if (c >= 'a' && c <= 'z') {
      ++counts[kLower];
    } else if (c >= 'A' && c <= 'Z') {
      ++counts[kUpper];
    } else if (c >= '0' && c <= '9') {
      ++counts[kDigit];
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++counts[kSpace];
    } else if (c < 0x80) {
      ++counts[kPunct];
    } else {
      ++counts[kNonAscii];
    }
  }
  if (units == 0) return 1.0;  // nothing but continuation bytes: garbage

  // Repetition: the longest run of one byte, as a fraction of the input.
  // Natural text tops out around 2-3 repeated characters; padding floods
  // ("aaaa...", "!!!!...") approach 1.0.
  size_t longest_run = 1;
  size_t run = 1;
  for (size_t i = 1; i < question.size(); ++i) {
    run = (question[i] == question[i - 1]) ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
  }
  double repeat_frac =
      static_cast<double>(longest_run) / static_cast<double>(question.size());

  // Token blowup: mean bytes per whitespace-separated word. Questions
  // average ~5; a 200-byte unbroken "word" explodes downstream token
  // budgets (and is nothing a person typed).
  std::vector<std::string> words = SplitWhitespace(question);
  double mean_word = words.empty()
                         ? static_cast<double>(question.size())
                         : static_cast<double>(question.size()) /
                               static_cast<double>(words.size());

  // Class entropy collapse: every natural question mixes letters, spaces
  // and punctuation (normalized entropy >= ~0.4); single-class floods
  // collapse toward 0.
  double entropy = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(units);
    entropy -= p * std::log(p);
  }
  double entropy_norm = entropy / std::log(static_cast<double>(kNumClasses));

  auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
  // Short fragments have degenerate run/entropy statistics; only the
  // blowup and density components apply to them.
  bool long_enough = question.size() >= 8;
  double comp_repeat =
      long_enough ? clamp01((repeat_frac - 0.2) * 2.5) : 0.0;
  double comp_entropy =
      long_enough ? clamp01((0.35 - entropy_norm) / 0.35) : 0.0;
  double comp_blowup = clamp01((mean_word - 12.0) / 28.0);
  double comp_nonascii =
      clamp01((static_cast<double>(counts[kNonAscii]) /
                   static_cast<double>(units) -
               0.3) /
              0.7);

  return clamp01(0.5 * comp_repeat + 0.45 * comp_entropy +
                 0.45 * comp_blowup + 0.25 * comp_nonascii);
}

HardenResult HardenQuestion(std::string_view question,
                            const HardenOptions& options) {
  HardenResult result;
  if (!options.enabled) {
    result.sanitized = std::string(question);
    result.canonical = result.sanitized;
    return result;
  }

  // --- Tier 1: sanitize (what the pipeline serves) ---------------------

  std::string sanitized = RepairUtf8(question);
  if (sanitized != question) result.flags |= kHardenRepairedUtf8;

  if (options.max_question_bytes > 0 &&
      sanitized.size() > options.max_question_bytes) {
    size_t cut = options.max_question_bytes;
    // Never cut mid-sequence: back up over continuation bytes.
    while (cut > 0 &&
           (static_cast<unsigned char>(sanitized[cut]) & 0xC0) == 0x80) {
      --cut;
    }
    sanitized.resize(cut);
    result.flags |= kHardenTruncated;
  }

  {
    std::string stripped;
    stripped.reserve(sanitized.size());
    for (char ch : sanitized) {
      unsigned char c = static_cast<unsigned char>(ch);
      if (c == '\t' || c == '\n' || c == '\r') {
        stripped += ' ';  // benign whitespace controls normalize to space
      } else if (c < 0x20 || c == 0x7F) {
        result.flags |= kHardenStrippedControl;  // C0 / DEL: dropped
      } else {
        stripped += ch;
      }
    }
    sanitized = std::move(stripped);
  }

  // --- Tier 2: canonicalize (held in reserve for the suspect retry) ----

  std::string folded;
  folded.reserve(sanitized.size());
  for (size_t i = 0; i < sanitized.size();) {
    size_t len = 1;
    uint32_t cp = DecodeUtf8(sanitized, i, &len);
    i += len;
    if (IsZeroWidth(cp)) {
      result.flags |= kHardenStrippedZeroWidth;
      continue;
    }
    uint32_t ascii = FoldConfusable(cp);
    if (ascii != 0) {
      result.flags |= kHardenFoldedConfusable;
      EncodeUtf8(ascii, &folded);
    } else {
      EncodeUtf8(cp, &folded);
    }
  }
  std::string canonical;
  canonical.reserve(folded.size());
  bool pending_space = false;
  for (char c : folded) {
    if (c == ' ') {
      pending_space = !canonical.empty();
      continue;
    }
    if (pending_space) {
      canonical += ' ';
      pending_space = false;
    }
    canonical += c;
  }
  if (canonical != folded) result.flags |= kHardenCollapsedWhitespace;

  result.anomaly = AnomalyScore(sanitized);
  if (result.anomaly >= options.anomaly_threshold) {
    result.flags |= kHardenAnomalous;
  }
  // Suspect = any structural repair fired, or the score crossed the
  // threshold. Collapsed whitespace alone is not suspicion — double
  // spaces are something people type.
  constexpr uint32_t kStructural = kHardenRepairedUtf8 | kHardenTruncated |
                                   kHardenStrippedControl |
                                   kHardenStrippedZeroWidth |
                                   kHardenFoldedConfusable;
  result.suspect =
      (result.flags & (kStructural | kHardenAnomalous)) != 0;
  result.sanitized = std::move(sanitized);
  result.canonical = std::move(canonical);
  return result;
}

}  // namespace serve
}  // namespace codes
