#include "embed/sentence_encoder.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/status.h"
#include "text/tokenize.h"

namespace codes {

namespace {

/// FNV-1a string hash; stable across platforms (unlike std::hash).
uint64_t HashToken(std::string_view token) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

SentenceEncoder::SentenceEncoder(int dim) : dim_(dim) {
  CODES_CHECK(dim > 0);
}

void SentenceEncoder::FitIdf(const std::vector<std::string>& corpus) {
  corpus_size_ = corpus.size();
  doc_freq_.clear();
  for (const auto& doc : corpus) {
    std::unordered_set<std::string> seen;
    for (auto& token : WordTokens(doc)) {
      seen.insert(StemToken(token));
    }
    for (const auto& token : seen) doc_freq_[token] += 1;
  }
}

size_t SentenceEncoder::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [token, count] : doc_freq_) {
    // Hash node + key bytes + value; the bucket array is charged as one
    // pointer per element (the usual libstdc++ layout, close enough for a
    // budget figure).
    bytes += sizeof(void*) * 2 + sizeof(int) + token.size() +
             sizeof(std::string);
  }
  return bytes;
}

namespace {
constexpr uint32_t kEncoderMagic = 0x53454E43;  // "SENC"
constexpr uint32_t kEncoderVersion = 1;
}  // namespace

void SentenceEncoder::SaveTo(std::string* out) const {
  serial::PutMagic(out, kEncoderMagic, kEncoderVersion);
  serial::PutU32(out, static_cast<uint32_t>(dim_));
  serial::PutU64(out, corpus_size_);
  std::vector<const std::pair<const std::string, int>*> items;
  items.reserve(doc_freq_.size());
  for (const auto& item : doc_freq_) items.push_back(&item);
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  serial::PutU64(out, items.size());
  for (const auto* item : items) {
    serial::PutString(out, item->first);
    serial::PutI32(out, item->second);
  }
}

Status SentenceEncoder::LoadFrom(serial::Reader* reader) {
  corpus_size_ = 0;
  doc_freq_.clear();
  auto corrupt = [this](const char* what) {
    corpus_size_ = 0;
    doc_freq_.clear();
    return Status::DataLoss(std::string("encoder snapshot: ") + what);
  };
  if (!serial::ReadMagic(reader, kEncoderMagic, kEncoderVersion)) {
    return corrupt("bad magic");
  }
  uint32_t dim = 0;
  if (!reader->ReadU32(&dim) || static_cast<int>(dim) != dim_) {
    return corrupt("dim mismatch");
  }
  uint64_t corpus_size = 0, n = 0;
  if (!reader->ReadU64(&corpus_size) || !reader->ReadU64(&n) ||
      n > reader->remaining()) {
    return corrupt("bad table size");
  }
  doc_freq_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string token;
    int32_t count = 0;
    if (!reader->ReadString(&token) || !reader->ReadI32(&count) || count < 1) {
      return corrupt("bad frequency entry");
    }
    doc_freq_[std::move(token)] = count;
  }
  corpus_size_ = corpus_size;
  return Status::Ok();
}

double SentenceEncoder::IdfOf(const std::string& token) const {
  if (corpus_size_ == 0) return 1.0;
  auto it = doc_freq_.find(token);
  double df = (it == doc_freq_.end()) ? 0.0 : static_cast<double>(it->second);
  return std::log((static_cast<double>(corpus_size_) + 1.0) / (df + 1.0)) +
         1.0;
}

std::vector<float> SentenceEncoder::Encode(std::string_view text) const {
  std::vector<float> vec(static_cast<size_t>(dim_), 0.0f);
  std::vector<std::string> tokens = WordTokens(text);
  std::vector<std::string> stems;
  stems.reserve(tokens.size());
  for (const auto& t : tokens) stems.push_back(StemToken(t));

  auto add_feature = [this, &vec](std::string_view feature, double weight) {
    uint64_t h = HashToken(feature);
    size_t bucket = static_cast<size_t>(h % static_cast<uint64_t>(dim_));
    double sign = ((h >> 63) & 1) ? -1.0 : 1.0;
    vec[bucket] += static_cast<float>(sign * weight);
  };

  for (const auto& stem : stems) {
    if (stem == "_") continue;  // mask/slot markers only matter for order
                                // (bigrams below); alone they carry no
                                // content and would swamp the vector
    double weight = IdfOf(stem);
    if (IsStopWord(stem)) weight *= 0.25;  // downweight, don't drop: keeps
                                           // question *shape* information
    add_feature(stem, weight);
  }
  // Bigrams capture local order ("order by" vs "by order").
  for (size_t i = 0; i + 1 < stems.size(); ++i) {
    add_feature(stems[i] + "__" + stems[i + 1], 0.5);
  }

  double norm = 0;
  for (float v : vec) norm += static_cast<double>(v) * v;
  if (norm > 0) {
    double inv = 1.0 / std::sqrt(norm);
    for (float& v : vec) v = static_cast<float>(v * inv);
  }
  return vec;
}

double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  CODES_CHECK(a.size() == b.size());
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace codes
