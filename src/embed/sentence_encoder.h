#ifndef CODES_EMBED_SENTENCE_ENCODER_H_
#define CODES_EMBED_SENTENCE_ENCODER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/serial.h"
#include "common/status.h"

namespace codes {

/// Dense sentence embedding built from hashed TF-IDF token features.
///
/// This is the repo's substitute for the SimCSE encoder the paper uses in
/// its demonstration retriever (Section 8.2): it maps a sentence to an
/// L2-normalized vector such that lexically/structurally similar sentences
/// have high cosine similarity. Unigram and bigram features are hashed
/// into `dim` buckets with a sign hash (feature hashing), which keeps the
/// encoder vocabulary-free and deterministic.
class SentenceEncoder {
 public:
  /// `dim` is the embedding width; larger dims reduce hash collisions.
  /// This is one of the capacity knobs of the model-size profiles.
  explicit SentenceEncoder(int dim = 256);

  /// Learns inverse-document-frequency weights from a corpus. Optional:
  /// without it all tokens weigh 1.
  void FitIdf(const std::vector<std::string>& corpus);

  /// Encodes `text` into an L2-normalized vector of size `dim()`.
  std::vector<float> Encode(std::string_view text) const;

  int dim() const { return dim_; }

  /// Resident cost in bytes (IDF table) for fleet memory accounting.
  size_t ApproxBytes() const;

  /// Appends the fitted IDF state (dim, corpus size, document
  /// frequencies in sorted token order, so identical encoders produce
  /// identical bytes) to `out`.
  void SaveTo(std::string* out) const;

  /// Restores from SaveTo bytes. Returns kDataLoss (encoder reset to
  /// unfitted) on malformation; on success Encode output is
  /// byte-identical to the encoder that was saved.
  Status LoadFrom(serial::Reader* reader);

 private:
  double IdfOf(const std::string& token) const;

  int dim_;
  size_t corpus_size_ = 0;
  std::unordered_map<std::string, int> doc_freq_;
};

/// Cosine similarity of two equal-length vectors; 0 for zero vectors.
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b);

}  // namespace codes

#endif  // CODES_EMBED_SENTENCE_ENCODER_H_
