// Reproduces Section 9.7 (latency/deployment) and prints the Table 1
// architecture sheet: per-sample inference latency by model scale, plus
// the capacity profiles standing in for the transformer hyper-parameters.
// A throughput section then drives the same pipeline through the parallel
// evaluation driver at 1/2/4/8 threads, reporting queries/sec and checking
// that EX is identical at every thread count.
//
// Paper shape to reproduce: latency grows with scale but stays far below
// API-based systems (DIN-SQL + GPT-4 at ~60 s/sample); the ratio between
// 15B and 1B is modest (~2.5x). Throughput should scale near-linearly up
// to the hardware thread count (prediction is CPU-bound and share-nothing
// after the retriever cache warms).

#include <cstdio>

#include <set>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "eval/parallel_eval.h"

namespace codes {
namespace {

/// Queries/sec of the parallel evaluator at several thread counts; EX must
/// not move. `samples` bounds wall-clock on the serial leg.
void ThroughputSection(const Text2SqlBenchmark& bench,
                       const CodesPipeline& pipeline, int samples) {
  bench::Banner(
      "Throughput: parallel batched evaluation (7B SFT, queries/sec)");
  std::printf("hardware threads: %d\n",
              ThreadPool::ResolveThreadCount(0));

  // Warm the per-database retriever cache once so every thread count
  // measures inference, not index construction.
  std::set<int> warmed;
  for (const auto& sample : bench.dev) {
    if (warmed.insert(sample.db_index).second) {
      (void)pipeline.BuildPrompt(bench, sample);
    }
  }

  bench::TablePrinter table({10, 12, 12, 10, 8});
  table.Row({"threads", "seconds", "queries/s", "speedup", "EX%"});
  table.Separator();
  double serial_qps = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    EvalOptions options;
    options.num_threads = threads;
    options.max_samples = samples;
    Timer timer;
    EvalResult result =
        ParallelEvaluateDevSet(bench, pipeline.PredictorFor(bench), options);
    double seconds = timer.ElapsedSeconds();
    double qps = result.metrics.n / seconds;
    if (threads == 1) serial_qps = qps;
    table.Row({std::to_string(threads), FormatDouble(seconds, 2),
               FormatDouble(qps, 1), FormatDouble(qps / serial_qps, 2) + "x",
               bench::Pct(result.metrics.ex)});
  }
  std::printf(
      "\nEX%% must be identical on every row: the driver shards "
      "deterministically and merges in sample order.\n");
}

void Run() {
  bench::Banner("Table 1: model capacity profiles");
  bench::TablePrinter arch({12, 8, 8, 8, 8, 8, 8, 8});
  arch.Row({"model", "params", "hidden", "ffn", "heads", "blocks", "ctx",
            "ngram"});
  arch.Separator();
  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);
  for (int i = 0; i < count; ++i) {
    const CapacityProfile& p = ProfileFor(sizes[i]);
    arch.Row({p.name, FormatDouble(p.params_billion, 0) + "B",
              std::to_string(p.hidden_size), std::to_string(p.ffn_size),
              std::to_string(p.attention_heads),
              std::to_string(p.transformer_blocks),
              std::to_string(p.max_context_tokens),
              std::to_string(p.ngram_order)});
  }

  bench::Banner("Section 9.7: inference latency per sample (SFT, Spider)");
  auto spider = BuildSpiderLike();
  LmZoo zoo;
  bench::TablePrinter table({12, 16, 14});
  table.Row({"model", "ms / sample", "samples / s"});
  table.Separator();
  for (int i = 0; i < count; ++i) {
    ModelSize size = sizes[i];
    PipelineConfig config;
    config.size = size;
    CodesPipeline pipeline(config, zoo.CodesFor(size));
    pipeline.TrainClassifier(spider);
    pipeline.FineTune(spider);
    // Warm the per-database retriever caches so we time inference only.
    for (const auto& sample : spider.dev) {
      pipeline.BuildPrompt(spider, sample);
      break;
    }
    Timer timer;
    int n = 0;
    for (const auto& sample : spider.dev) {
      (void)pipeline.Predict(spider, sample);
      ++n;
      if (n >= 100) break;
    }
    double seconds = timer.ElapsedSeconds();
    table.Row({ModelSizeName(size), FormatDouble(1000.0 * seconds / n, 2),
               FormatDouble(n / seconds, 1)});
  }
  std::printf(
      "\npaper reference: 0.6 / 0.9 / 1.1 / 1.5 seconds per sample on an "
      "A800; DIN-SQL + GPT-4 needs ~60 s per sample.\n");

  {
    PipelineConfig config;
    config.size = ModelSize::k7B;
    CodesPipeline pipeline(config, zoo.CodesFor(config.size));
    pipeline.TrainClassifier(spider);
    pipeline.FineTune(spider);
    ThroughputSection(spider, pipeline, /*samples=*/200);
  }
}

}  // namespace
}  // namespace codes

int main() {
  codes::Run();
  return 0;
}
