// Reproduces Section 9.7 (latency/deployment) and prints the Table 1
// architecture sheet: per-sample inference latency by model scale, plus
// the capacity profiles standing in for the transformer hyper-parameters.
// A throughput section then drives the same pipeline through the parallel
// evaluation driver at 1/2/4/8 threads, reporting queries/sec and checking
// that EX is identical at every thread count.
//
// Paper shape to reproduce: latency grows with scale but stays far below
// API-based systems (DIN-SQL + GPT-4 at ~60 s/sample); the ratio between
// 15B and 1B is modest (~2.5x). Throughput should scale near-linearly up
// to the hardware thread count (prediction is CPU-bound and share-nothing
// after the retriever cache warms).

#include <algorithm>
#include <cstdio>

#include <random>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/perf_report.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "eval/parallel_eval.h"
#include "index/bm25_index.h"
#include "index/bm25_reference.h"
#include "lm/ngram_lm.h"
#include "lm/ngram_reference.h"
#include "serve/front_end.h"
#include "serve/load_gen.h"
#include "sqlengine/database.h"
#include "sqlengine/executor.h"
#include "sqlengine/parser.h"
#include "storage/crash_sim.h"
#include "storage/storage_db.h"
#include "text/similarity.h"

namespace codes {
namespace {

/// Hot-path before/after: each speed-campaign rewrite raced against the
/// pinned reference implementation it replaced, on identical workloads,
/// inside one binary (so compiler/flags/machine cancel out). The
/// equivalence suite (tests/speed_equivalence_test.cc) guarantees both
/// sides return byte-identical results; this section reports what the
/// rewrite bought. Speedups land in BENCH_latency.json as gated metrics.
void HotPathSection(bench::PerfReport* report, bool quick) {
  bench::Banner("Hot paths: pinned reference vs speed-campaign rewrite");

  const int scale = quick ? 1 : 4;
  bench::TablePrinter table({26, 14, 14, 10});
  table.Row({"hot path", "before us/op", "after us/op", "speedup"});
  table.Separator();

  auto best_of = [](auto&& fn, int reps) {
    double best = fn();
    for (int r = 1; r < reps; ++r) best = std::min(best, fn());
    return best;
  };

  // --- Longest common substring (value retriever fine-ranking) ---------
  {
    std::mt19937 rng(20260808);
    const std::string alphabet =
        "abcdefghijklmnopqrstuvwxyz ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::uniform_int_distribution<size_t> len(20, 120);
    std::uniform_int_distribution<size_t> chr(0, alphabet.size() - 1);
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int i = 0; i < 400 * scale; ++i) {
      std::string a, b;
      for (size_t j = len(rng); j > 0; --j) a.push_back(alphabet[chr(rng)]);
      for (size_t j = len(rng); j > 0; --j) b.push_back(alphabet[chr(rng)]);
      pairs.emplace_back(std::move(a), std::move(b));
    }
    long long sink = 0;
    auto run_ref = [&] {
      Timer timer;
      for (const auto& [a, b] : pairs) {
        sink += LongestCommonSubstringLengthReferenceDp(a, b);
      }
      return timer.ElapsedSeconds();
    };
    auto run_new = [&] {
      Timer timer;
      for (const auto& [a, b] : pairs) {
        sink += LongestCommonSubstringLength(a, b);
      }
      return timer.ElapsedSeconds();
    };
    double before_us = 1e6 * best_of(run_ref, 3) / pairs.size();
    double after_us = 1e6 * best_of(run_new, 3) / pairs.size();
    if (sink == 42) std::printf(" ");  // keep the loops observable
    table.Row({"lcs (string pair)", FormatDouble(before_us, 3),
               FormatDouble(after_us, 3),
               FormatDouble(before_us / after_us, 2) + "x"});
    report->Add("hotpath_lcs_before_us", before_us);
    report->Add("hotpath_lcs_after_us", after_us);
    report->Add("hotpath_lcs_speedup_x", before_us / after_us);
  }

  // --- BM25 query (value retriever coarse stage) -----------------------
  {
    std::mt19937 rng(7);
    static const char* kWords[] = {
        "Jesenik", "Prague",  "branch",  "office", "Sarah",    "Martinez",
        "road",    "losses",  "castle",  "client", "account",  "2019",
        "total",   "north",   "station", "premium","Ostrava",  "wine",
        "exporter","district","arena",   "velvet", "capacity", "stadium"};
    std::uniform_int_distribution<int> nwords(1, 5);
    std::uniform_int_distribution<size_t> word(0, std::size(kWords) - 1);
    Bm25Index fast;
    ReferenceBm25Index ref;
    for (int d = 0; d < 1500 * scale; ++d) {
      std::string doc;
      for (int w = nwords(rng); w > 0; --w) {
        if (!doc.empty()) doc += ' ';
        doc += kWords[word(rng)];
      }
      fast.AddDocument(doc);
      ref.AddDocument(doc);
    }
    fast.Finalize();
    ref.Finalize();
    std::vector<std::string> queries;
    for (int q = 0; q < 300 * scale; ++q) {
      std::string query;
      for (int w = 0; w < 4; ++w) {
        if (!query.empty()) query += ' ';
        query += kWords[word(rng)];
      }
      queries.push_back(std::move(query));
    }
    size_t sink = 0;
    auto run_ref = [&] {
      Timer timer;
      for (const auto& q : queries) sink += ref.Query(q, 10).size();
      return timer.ElapsedSeconds();
    };
    auto run_new = [&] {
      Timer timer;
      for (const auto& q : queries) sink += fast.Query(q, 10).size();
      return timer.ElapsedSeconds();
    };
    double before_us = 1e6 * best_of(run_ref, 3) / queries.size();
    double after_us = 1e6 * best_of(run_new, 3) / queries.size();
    if (sink == 42) std::printf(" ");
    table.Row({"bm25 query (top-10)", FormatDouble(before_us, 3),
               FormatDouble(after_us, 3),
               FormatDouble(before_us / after_us, 2) + "x"});
    report->Add("hotpath_bm25_before_us", before_us);
    report->Add("hotpath_bm25_after_us", after_us);
    report->Add("hotpath_bm25_speedup_x", before_us / after_us);
  }

  // --- N-gram scoring (generation-time candidate ranking) --------------
  {
    std::vector<std::string> corpus;
    static const char* kFragments[] = {
        "SELECT name FROM singer WHERE age > 20",
        "SELECT count(*) FROM concert WHERE year = 2014",
        "SELECT T1.name FROM singer AS T1 JOIN concert AS T2 ON T1.id = "
        "T2.singer_id",
        "SELECT avg(age), min(age), max(age) FROM singer",
        "SELECT stadium_id, count(*) FROM concert GROUP BY stadium_id "
        "ORDER BY count(*) DESC",
        "SELECT DISTINCT country FROM singer WHERE age > 20"};
    for (int i = 0; i < 40 * scale; ++i) {
      corpus.push_back(kFragments[i % std::size(kFragments)] +
                       std::string(" -- v") + std::to_string(i));
    }
    NgramLm fast(5);
    ReferenceNgramLm ref(5);
    fast.Train(corpus);
    ref.Train(corpus);
    double sink = 0;
    auto run_ref = [&] {
      Timer timer;
      for (const auto& doc : corpus) sink += ref.AvgLogProb(doc);
      return timer.ElapsedSeconds();
    };
    auto run_new = [&] {
      Timer timer;
      for (const auto& doc : corpus) sink += fast.AvgLogProb(doc);
      return timer.ElapsedSeconds();
    };
    double before_us = 1e6 * best_of(run_ref, 3) / corpus.size();
    double after_us = 1e6 * best_of(run_new, 3) / corpus.size();
    if (sink == 42.0) std::printf(" ");
    table.Row({"ngram AvgLogProb (doc)", FormatDouble(before_us, 3),
               FormatDouble(after_us, 3),
               FormatDouble(before_us / after_us, 2) + "x"});
    report->Add("hotpath_ngram_before_us", before_us);
    report->Add("hotpath_ngram_after_us", after_us);
    report->Add("hotpath_ngram_speedup_x", before_us / after_us);
  }

  std::printf(
      "\nboth columns run in this binary on identical workloads; the "
      "equivalence suite pins byte-identical outputs, so the ratio is a "
      "pure data-structure win.\n");
}

/// Index-scan vs sequential-scan access path on the disk-backed storage
/// engine: the SAME StorageDb, the SAME parsed statements, with only the
/// index knob toggled — so the ratio isolates what the B+ tree access path
/// buys on a selective predicate over 100k rows. The differential suite
/// pins both paths byte-identical; this section reports the speed.
void StorageAccessPathSection(bench::PerfReport* report, bool quick) {
  bench::Banner(
      "Storage access paths: index scan vs sequential scan (100k rows)");

  // Row count is identical in both profiles: the gated metric is a ratio,
  // and shrinking the table would change the claim, not just the runtime.
  constexpr int kRows = 100'000;
  sql::DatabaseSchema schema;
  schema.name = "bench_storage";
  sql::TableDef items;
  items.name = "items";
  items.columns = {
      {"id", sql::DataType::kInteger, "row id", true},
      {"grp", sql::DataType::kInteger, "bucket", false},
      {"payload", sql::DataType::kText, "ballast", false},
  };
  schema.tables = {items};
  sql::Database db(std::move(schema));
  for (int i = 0; i < kRows; ++i) {
    CODES_CHECK(db.Insert("items",
                          {sql::Value(static_cast<int64_t>(i)),
                           sql::Value(static_cast<int64_t>(i % 997)),
                           sql::Value("payload-" + std::to_string(i))})
                    .ok());
  }
  auto built = storage::StorageDb::CreateInMemoryFrom(db, /*pool_frames=*/256);
  CODES_CHECK(built.ok());
  storage::StorageDb& sdb = **built;

  // Pre-parsed selective range probes (50 of 100k rows each, well under
  // the planner's selectivity cutoff), spread across the key space so no
  // single hot leaf serves every query.
  std::vector<std::unique_ptr<sql::SelectStatement>> stmts;
  for (int q = 0; q < 16; ++q) {
    int lo = (q * 6151) % (kRows - 60);
    auto parsed = sql::ParseSql(
        "SELECT payload FROM items WHERE id BETWEEN " + std::to_string(lo) +
        " AND " + std::to_string(lo + 49));
    CODES_CHECK(parsed.ok());
    stmts.push_back(std::move(*parsed));
  }
  sql::Executor exec(sdb);
  const int reps = quick ? 2 : 6;
  size_t result_rows = 0;
  auto run_paths = [&](bool indexed) {
    sdb.set_index_scans_enabled(indexed);
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      for (const auto& stmt : stmts) {
        auto result = exec.Execute(*stmt);
        CODES_CHECK(result.ok());
        result_rows += result->NumRows();
      }
    }
    return timer.ElapsedSeconds();
  };
  auto best_of = [](auto&& fn, int n) {
    double best = fn();
    for (int r = 1; r < n; ++r) best = std::min(best, fn());
    return best;
  };

  // Confirm the planner actually takes the index path when allowed — a
  // silent fallback to seq scan would turn this section into noise.
  MetricsRegistry::SetEnabled(true);
  MetricsRegistry::Global().Reset();
  (void)run_paths(true);
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  CODES_CHECK(snap.counters["storage.path.index_scan"] > 0);

  const int timing_reps = 3;
  double seq_seconds = best_of([&] { return run_paths(false); }, timing_reps);
  double idx_seconds = best_of([&] { return run_paths(true); }, timing_reps);
  const double per_query = static_cast<double>(reps) * stmts.size();
  double seq_us = 1e6 * seq_seconds / per_query;
  double idx_us = 1e6 * idx_seconds / per_query;
  if (result_rows == 0) std::printf(" ");  // keep the loops observable

  bench::TablePrinter table({26, 14, 14});
  table.Row({"access path", "us / query", "rows touched"});
  table.Separator();
  table.Row({"sequential scan", FormatDouble(seq_us, 1),
             std::to_string(kRows)});
  table.Row({"B+ tree index scan", FormatDouble(idx_us, 1), "~50"});
  std::printf("\nindex-path speedup: %.1fx (gate: >= 5x; both paths return "
              "byte-identical rows)\n",
              seq_us / idx_us);
  // Absolute per-query times depend on machine memory speed: noisy. The
  // ratio is the architectural claim and gates.
  report->AddNoisy("storage_seq_scan_us", seq_us);
  report->AddNoisy("storage_index_scan_us", idx_us);
  report->Add("storage_index_speedup_x", seq_us / idx_us);
}

/// Durability cost of the crash-safety layer (DESIGN.md section 15): what
/// WAL page-image logging plus the commit-marker group flush add to a
/// mutation batch, against the same staging with plain write-back and no
/// log. Both sides run on RAM-backed page stores, so the numbers isolate
/// the CPU/write-amplification cost of the logging protocol itself — real
/// device sync latency is workload- and hardware-specific and is NOT
/// measured here. A recovery row reports redo-replay time over the full
/// un-checkpointed log. All absolute times and the ratio are noisy (tiny
/// batches, allocator-sensitive); the section exists to keep the overhead
/// visible in every snapshot, not to gate it.
void DurabilitySection(bench::PerfReport* report, bool quick) {
  bench::Banner("Durability: WAL commit overhead and recovery replay");

  sql::DatabaseSchema schema;
  schema.name = "bench_durability";
  sql::TableDef events;
  events.name = "events";
  events.columns = {
      {"id", sql::DataType::kInteger, "row id", true},
      {"grp", sql::DataType::kInteger, "bucket", false},
      {"payload", sql::DataType::kText, "ballast", false},
  };
  schema.tables = {events};
  sql::Database db(std::move(schema));
  constexpr int kInitialRows = 512;
  for (int i = 0; i < kInitialRows; ++i) {
    CODES_CHECK(db.Insert("events",
                          {sql::Value(static_cast<int64_t>(i)),
                           sql::Value(static_cast<int64_t>(i % 53)),
                           sql::Value("seed-" + std::to_string(i))})
                    .ok());
  }

  const int batches = quick ? 32 : 96;
  constexpr int kRowsPerBatch = 16;
  auto batch_rows = [&](int b) {
    std::vector<sql::Row> rows;
    rows.reserve(kRowsPerBatch);
    for (int r = 0; r < kRowsPerBatch; ++r) {
      int64_t id = kInitialRows + int64_t{b} * kRowsPerBatch + r;
      rows.push_back({sql::Value(id), sql::Value(id % 53),
                      sql::Value("row-" + std::to_string(id))});
    }
    return rows;
  };

  // WAL path: stage, log page images, group-flush. No checkpoints, so the
  // log holds every batch and the reopen below replays all of them.
  storage::SimEnv env;
  auto wal_built =
      storage::StorageDb::CreateSimFrom(db, &env, "bench.db",
                                        /*pool_frames=*/256);
  CODES_CHECK(wal_built.ok());
  Timer wal_timer;
  for (int b = 0; b < batches; ++b) {
    CODES_CHECK((*wal_built)->AppendRows(0, batch_rows(b)).ok());
    CODES_CHECK((*wal_built)->CommitBatch().ok());
  }
  double wal_us = 1e6 * wal_timer.ElapsedSeconds() / batches;
  wal_built->reset();  // release the sim files before the recovery reopen

  // Baseline: identical staging, plain write-back, no logging. Flush() is
  // the closest durability stand-in the no-WAL engine has.
  auto raw_built = storage::StorageDb::CreateInMemoryFrom(
      db, /*pool_frames=*/256);
  CODES_CHECK(raw_built.ok());
  Timer raw_timer;
  for (int b = 0; b < batches; ++b) {
    CODES_CHECK((*raw_built)->AppendRows(0, batch_rows(b)).ok());
    CODES_CHECK((*raw_built)->Flush().ok());
  }
  double raw_us = 1e6 * raw_timer.ElapsedSeconds() / batches;

  // Clean reopen of the WAL-path database: redo recovery replays every
  // batch's page images (nothing was checkpointed) and re-checkpoints.
  Timer recover_timer;
  auto reopened = storage::StorageDb::OpenSim(&env, "bench.db",
                                              /*pool_frames=*/256);
  double recover_us = 1e6 * recover_timer.ElapsedSeconds();
  CODES_CHECK(reopened.ok());
  CODES_CHECK((*reopened)->SourceRowCount(0) ==
              static_cast<size_t>(kInitialRows + batches * kRowsPerBatch));

  double overhead_pct = 100.0 * (wal_us - raw_us) / raw_us;
  bench::TablePrinter table({34, 14});
  table.Row({"commit path", "us / batch"});
  table.Separator();
  table.Row({"write-back, no log", FormatDouble(raw_us, 1)});
  table.Row({"WAL log + commit flush", FormatDouble(wal_us, 1)});
  std::printf("\nWAL overhead: %+.1f%% per committed batch (%d batches of "
              "%d rows)\nredo recovery: %.0f us to replay the full "
              "un-checkpointed log\n",
              overhead_pct, batches, kRowsPerBatch, recover_us);
  report->AddNoisy("durability_commit_wal_us", wal_us);
  report->AddNoisy("durability_commit_nowal_us", raw_us);
  report->AddNoisy("durability_wal_overhead_pct", overhead_pct);
  report->AddNoisy("durability_recovery_replay_us", recover_us);
}

/// Queries/sec of the parallel evaluator at several thread counts; EX must
/// not move. `samples` bounds wall-clock on the serial leg.
void ThroughputSection(const Text2SqlBenchmark& bench,
                       const CodesPipeline& pipeline, int samples) {
  bench::Banner(
      "Throughput: parallel batched evaluation (7B SFT, queries/sec)");
  std::printf("hardware threads: %d\n",
              ThreadPool::ResolveThreadCount(0));

  // Warm the per-database retriever cache once so every thread count
  // measures inference, not index construction.
  std::set<int> warmed;
  for (const auto& sample : bench.dev) {
    if (warmed.insert(sample.db_index).second) {
      (void)pipeline.BuildPrompt(bench, sample);
    }
  }

  bench::TablePrinter table({10, 12, 12, 10, 8});
  table.Row({"threads", "seconds", "queries/s", "speedup", "EX%"});
  table.Separator();
  double serial_qps = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    EvalOptions options;
    options.num_threads = threads;
    options.max_samples = samples;
    Timer timer;
    EvalResult result =
        ParallelEvaluateDevSet(bench, pipeline.PredictorFor(bench), options);
    double seconds = timer.ElapsedSeconds();
    double qps = result.metrics.n / seconds;
    if (threads == 1) serial_qps = qps;
    table.Row({std::to_string(threads), FormatDouble(seconds, 2),
               FormatDouble(qps, 1), FormatDouble(qps / serial_qps, 2) + "x",
               bench::Pct(result.metrics.ex)});
  }
  std::printf(
      "\nEX%% must be identical on every row: the driver shards "
      "deterministically and merges in sample order.\n");
}

/// Unguarded Predict vs PredictGuarded with an *active* guard (generous
/// budgets, so every check runs but nothing trips). The robustness layer's
/// contract is <= 2% overhead for guard-enabled serving.
void GuardOverheadSection(const Text2SqlBenchmark& bench,
                          const CodesPipeline& pipeline, int queries,
                          bench::PerfReport* report) {
  bench::Banner("Guard overhead: Predict vs guarded serving (7B SFT)");

  ServeOptions guarded;
  guarded.limits.max_rows = 50'000'000;
  guarded.limits.max_bytes = static_cast<size_t>(1) << 40;
  guarded.limits.max_depth = 64;
  CancelToken token;  // never cancelled; forces the token check too
  guarded.cancel = &token;

  auto run_free = [&]() {
    Timer timer;
    int n = 0;
    while (n < queries) {
      for (const auto& sample : bench.dev) {
        if (n >= queries) break;
        (void)pipeline.Predict(bench, sample);
        ++n;
      }
    }
    return timer.ElapsedSeconds();
  };
  auto run_guarded = [&]() {
    Timer timer;
    int n = 0;
    while (n < queries) {
      for (const auto& sample : bench.dev) {
        if (n >= queries) break;
        (void)pipeline.PredictGuarded(bench, sample, guarded);
        ++n;
      }
    }
    return timer.ElapsedSeconds();
  };

  // Interleave three repetitions of each and keep the fastest, so ambient
  // machine noise does not masquerade as guard cost.
  double best_free = run_free();
  double best_guarded = run_guarded();
  for (int rep = 1; rep < 3; ++rep) {
    best_free = std::min(best_free, run_free());
    best_guarded = std::min(best_guarded, run_guarded());
  }
  double overhead_pct = 100.0 * (best_guarded - best_free) / best_free;

  bench::TablePrinter table({22, 12, 14});
  table.Row({"path", "seconds", "ms / sample"});
  table.Separator();
  table.Row({"Predict (no guard)", FormatDouble(best_free, 3),
             FormatDouble(1000.0 * best_free / queries, 3)});
  table.Row({"PredictGuarded", FormatDouble(best_guarded, 3),
             FormatDouble(1000.0 * best_guarded / queries, 3)});
  std::printf("\nguard overhead: %+.2f%% (budget: <= 2%%)\n", overhead_pct);
  report->Add("predict_us_per_sample", 1e6 * best_free / queries);
  // A difference of two noisy wall-clock reads: report, never gate.
  report->AddNoisy("guard_overhead_pct", overhead_pct);
}

/// Where a guarded request spends its time: runs `queries` predictions
/// with a zeroed registry and prints every pipeline stage span with its
/// histogram percentiles and share of the root span's total. The share
/// column is the paper's Section 9.7 claim made measurable — schema
/// filtering and value retrieval should be small next to generation.
void StageAttributionSection(const Text2SqlBenchmark& bench,
                             const CodesPipeline& pipeline, int queries,
                             bench::PerfReport* report) {
  bench::Banner("Stage attribution: where a guarded request spends time");

  ServeOptions options;
  options.limits.max_rows = 20000;

  MetricsRegistry::SetEnabled(true);
  MetricsRegistry::Global().Reset();
  int n = 0;
  while (n < queries) {
    for (const auto& sample : bench.dev) {
      if (n >= queries) break;
      (void)pipeline.PredictGuarded(bench, sample, options);
      ++n;
    }
  }
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();

  auto total_it = snapshot.histograms.find("span.pipeline.predict");
  double total_us = total_it != snapshot.histograms.end()
                        ? static_cast<double>(total_it->second.sum_us)
                        : 0.0;

  bench::TablePrinter table({28, 8, 10, 10, 10, 8});
  table.Row({"stage span", "count", "p50 us", "p95 us", "p99 us", "share"});
  table.Separator();
  for (const auto& [name, h] : snapshot.histograms) {
    constexpr std::string_view kPrefix = "span.";
    if (name.rfind(kPrefix, 0) != 0) continue;
    double share =
        total_us > 0.0 ? 100.0 * static_cast<double>(h.sum_us) / total_us : 0.0;
    table.Row({name.substr(kPrefix.size()), std::to_string(h.count),
               FormatDouble(h.p50_us, 0), FormatDouble(h.p95_us, 0),
               FormatDouble(h.p99_us, 0), bench::Pct(share) + "%"});
  }
  std::printf(
      "\npercentiles are histogram bucket upper bounds (2x resolution); "
      "share is the span's summed time over the root pipeline.predict "
      "span's. Nested spans (bm25.lookup inside value_retrieval) overlap "
      "their parents, so shares do not sum to 100%%.\n");

  // Fixed stage list for the JSON schema: the key set must not depend on
  // which spans happened to fire, so absent spans report 0. Percentiles
  // are histogram bucket upper bounds (2x resolution), so a hair of drift
  // can double the reported value — noisy, never gated.
  const std::pair<const char*, const char*> kStages[] = {
      {"span.pipeline.predict", "stage_predict"},
      {"span.pipeline.value_retrieval", "stage_value_retrieval"},
      {"span.bm25.lookup", "stage_bm25_lookup"},
  };
  for (const auto& [span, key] : kStages) {
    auto it = snapshot.histograms.find(span);
    double p50 = it != snapshot.histograms.end() ? it->second.p50_us : 0.0;
    double p95 = it != snapshot.histograms.end() ? it->second.p95_us : 0.0;
    report->AddNoisy(std::string(key) + "_p50_us", p50);
    report->AddNoisy(std::string(key) + "_p95_us", p95);
  }
}

/// The observability layer's own cost: the same prediction loop with the
/// metrics switch off (spans skip clock reads and histogram writes) vs on,
/// interleaved best-of-3 like the guard section. Budget: <= 2%.
void InstrumentationOverheadSection(const Text2SqlBenchmark& bench,
                                    const CodesPipeline& pipeline,
                                    int queries, bench::PerfReport* report) {
  bench::Banner("Instrumentation overhead: metrics off vs on (7B SFT)");

  ServeOptions options;
  options.limits.max_rows = 20000;

  auto run = [&](bool enabled) {
    MetricsRegistry::SetEnabled(enabled);
    Timer timer;
    int n = 0;
    while (n < queries) {
      for (const auto& sample : bench.dev) {
        if (n >= queries) break;
        (void)pipeline.PredictGuarded(bench, sample, options);
        ++n;
      }
    }
    return timer.ElapsedSeconds();
  };

  // The true gated cost (a handful of clock reads + histogram writes per
  // request) is far below ambient run-to-run noise, so the measurement
  // needs more care than the guard section: warm both paths once, then
  // interleave five repetitions with alternating order (so thermal drift
  // cannot systematically favor one path) and keep the fastest of each.
  (void)run(false);
  (void)run(true);
  double best_off = run(false);
  double best_on = run(true);
  for (int rep = 1; rep < 5; ++rep) {
    if (rep % 2 == 1) {
      best_on = std::min(best_on, run(true));
      best_off = std::min(best_off, run(false));
    } else {
      best_off = std::min(best_off, run(false));
      best_on = std::min(best_on, run(true));
    }
  }
  MetricsRegistry::SetEnabled(true);
  double overhead_pct = 100.0 * (best_on - best_off) / best_off;

  bench::TablePrinter table({24, 12, 14});
  table.Row({"path", "seconds", "ms / sample"});
  table.Separator();
  table.Row({"metrics disabled", FormatDouble(best_off, 3),
             FormatDouble(1000.0 * best_off / queries, 3)});
  table.Row({"metrics enabled", FormatDouble(best_on, 3),
             FormatDouble(1000.0 * best_on / queries, 3)});
  std::printf("\ninstrumentation overhead: %+.2f%% (budget: <= 2%%)\n",
              overhead_pct);
  report->AddNoisy("instrumentation_overhead_pct", overhead_pct);
}

/// Per-request latency distribution with every failpoint armed at 1%:
/// the repair loop and fallback rungs should fatten the tail, not the
/// median.
void ChaosTailLatencySection(const Text2SqlBenchmark& bench,
                             const CodesPipeline& pipeline, int queries) {
  bench::Banner("Tail latency under 1% fault injection (7B SFT)");

  ServeOptions options;
  options.limits.max_rows = 20000;

  auto percentile = [](std::vector<double>& ms, double p) {
    size_t idx = static_cast<size_t>(p * (ms.size() - 1));
    return ms[idx];
  };
  bench::TablePrinter table({16, 10, 10, 10, 10});
  table.Row({"faults", "p50 ms", "p95 ms", "p99 ms", "max ms"});
  table.Separator();
  for (bool inject : {false, true}) {
    if (inject) {
      CODES_CHECK(Failpoints::Configure("*=prob:0.01", 7).ok());
    }
    std::vector<double> ms;
    ms.reserve(queries);
    int n = 0;
    while (n < queries) {
      for (const auto& sample : bench.dev) {
        if (n >= queries) break;
        Timer timer;
        (void)pipeline.PredictGuarded(bench, sample, options);
        ms.push_back(1000.0 * timer.ElapsedSeconds());
        ++n;
      }
    }
    std::sort(ms.begin(), ms.end());
    table.Row({inject ? "*=prob:0.01" : "none",
               FormatDouble(percentile(ms, 0.50), 2),
               FormatDouble(percentile(ms, 0.95), 2),
               FormatDouble(percentile(ms, 0.99), 2),
               FormatDouble(ms.back(), 2)});
  }
  Failpoints::Clear();
  std::printf(
      "\nfaulted requests pay for fallback prompt rebuilds and repair "
      "re-executions; the clean median must not move.\n");
}

/// Goodput as offered load sweeps past saturation: open-loop virtual-time
/// campaigns through the serving front end at several multiples of the
/// level-0 capacity. An unprotected open-loop server collapses past 1x
/// (every request eventually misses its deadline inside an unbounded
/// backlog); with admission control, deadline shedding, and brownout the
/// goodput curve must stay flat instead — the 2x point is required to
/// hold >= 90% of the best goodput seen at or below it. The table also
/// records the shed/reject
/// rate and where served requests landed on the brownout ladder.
void OverloadGoodputSection(const Text2SqlBenchmark& bench,
                            const CodesPipeline& pipeline) {
  bench::Banner("Overload goodput: offered load vs served-in-deadline");

  serve::LoadGenOptions base;
  base.seed = 20240806;
  base.num_requests = 600;
  base.virtual_workers = 4;
  base.service_base_us = 20'000;  // level-0 capacity: 4 / 20 ms = 200 qps
  base.deadline_us = 200'000;
  base.threads = 4;
  const double capacity_qps = 1e6 * base.virtual_workers /
                              static_cast<double>(base.service_base_us);
  std::printf("level-0 capacity: %.0f qps (%d virtual workers x %.0f ms)\n",
              capacity_qps, base.virtual_workers,
              base.service_base_us / 1000.0);

  bench::TablePrinter table({10, 10, 10, 10, 8, 10, 20});
  table.Row({"offered", "goodput", "shed+rej%", "late%", "deg", "rec",
             "served L0..L4"});
  table.Separator();
  double peak_goodput = 0.0;
  double goodput_at_2x = 0.0;
  for (double mult : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    serve::LoadGenOptions options = base;
    options.offered_qps = capacity_qps * mult;
    serve::LoadReport report = serve::RunLoadCampaign(pipeline, bench, options);
    double goodput = report.GoodputQps();
    // Peak over offered <= 2x: the asserted point must not sit in a
    // collapse relative to anything before it. (Brownout keeps goodput
    // *rising* past 2x — served requests get cheaper — so the 3x row is
    // informational, not part of the budget.)
    if (mult <= 2.0) peak_goodput = std::max(peak_goodput, goodput);
    if (mult == 2.0) goodput_at_2x = goodput;
    uint64_t dropped = report.rejected_rate + report.rejected_queue_full +
                       report.shed_deadline + report.shed_drain;
    std::string levels;
    for (int level = 0; level < serve::kNumBrownoutLevels; ++level) {
      if (level > 0) levels += "/";
      levels += std::to_string(report.served_at_level[level]);
    }
    table.Row({FormatDouble(options.offered_qps, 0), FormatDouble(goodput, 1),
               bench::Pct(static_cast<double>(dropped) / report.offered) + "%",
               bench::Pct(static_cast<double>(report.served_late) /
                          report.offered) +
                   "%",
               std::to_string(report.brownout_degrades),
               std::to_string(report.brownout_recoveries), levels});
  }
  double retained = 100.0 * goodput_at_2x / peak_goodput;
  std::printf(
      "\ngoodput at 2x saturation: %.1f qps = %.1f%% of the peak over "
      "offered <= 2x (budget: >= 90%%)\n"
      "past 1x the queue saturates, deadline shedding discards doomed "
      "requests before they cost pipeline time, and brownout moves served "
      "traffic to cheaper richness levels.\n",
      goodput_at_2x, retained);
  CODES_CHECK(retained >= 90.0);
}

/// The serving front door's own cost: PredictGuarded called directly vs
/// through ServeFrontEnd::Serve with every protection active but nothing
/// tripping (no rate limit, near-empty queue so brownout stays at level 0,
/// breaker threshold set unreachable). The difference is pure admission
/// bookkeeping — token bucket, breaker consults, brownout update, serve.*
/// metrics — and must stay within the same <= 2% budget as the guards.
void AdmissionOverheadSection(const Text2SqlBenchmark& bench,
                              const CodesPipeline& pipeline, int queries,
                              bench::PerfReport* report) {
  bench::Banner("Admission overhead: PredictGuarded vs front-end Serve");

  serve::FrontEndOptions fe;
  fe.limits.max_rows = 50'000'000;
  fe.limits.max_bytes = static_cast<size_t>(1) << 40;
  fe.limits.max_depth = 64;
  fe.admission.queue_capacity = 4096;  // fullness ~0: brownout never moves
  fe.breaker.failure_threshold = 1.1;  // ratio tops out at 1.0: never trips
  serve::ServeFrontEnd front_end(&pipeline, &bench, fe);

  ServeOptions direct;
  direct.limits = fe.limits;

  auto run_direct = [&]() {
    Timer timer;
    int n = 0;
    while (n < queries) {
      for (const auto& sample : bench.dev) {
        if (n >= queries) break;
        (void)pipeline.PredictGuarded(bench, sample, direct);
        ++n;
      }
    }
    return timer.ElapsedSeconds();
  };
  auto run_served = [&]() {
    Timer timer;
    int n = 0;
    while (n < queries) {
      for (const auto& sample : bench.dev) {
        if (n >= queries) break;
        std::string sql;
        (void)front_end.Serve(sample, &sql);
        ++n;
      }
    }
    return timer.ElapsedSeconds();
  };

  // Interleaved best-of-3, exactly like the guard section: ambient noise
  // must not masquerade as front-end cost.
  double best_direct = run_direct();
  double best_served = run_served();
  for (int rep = 1; rep < 3; ++rep) {
    best_direct = std::min(best_direct, run_direct());
    best_served = std::min(best_served, run_served());
  }
  double overhead_pct = 100.0 * (best_served - best_direct) / best_direct;

  bench::TablePrinter table({24, 12, 14});
  table.Row({"path", "seconds", "ms / sample"});
  table.Separator();
  table.Row({"PredictGuarded", FormatDouble(best_direct, 3),
             FormatDouble(1000.0 * best_direct / queries, 3)});
  table.Row({"ServeFrontEnd::Serve", FormatDouble(best_served, 3),
             FormatDouble(1000.0 * best_served / queries, 3)});
  std::printf("\nadmission overhead: %+.2f%% (budget: <= 2%%)\n",
              overhead_pct);
  report->AddNoisy("admission_overhead_pct", overhead_pct);
}

/// What the request-hardening front door costs clean traffic: the same
/// front-end Serve loop with hardening off vs on. Dev questions are plain
/// ASCII, so the sanitized tier is byte-identical to the input and the
/// whole pass is validation work — UTF-8 scan, control scan,
/// canonicalization, anomaly score. Budget: <= 2%, same as the guards.
void HardeningOverheadSection(const Text2SqlBenchmark& bench,
                              const CodesPipeline& pipeline, int queries,
                              bench::PerfReport* report) {
  bench::Banner("Hardening overhead: front-end Serve, harden off vs on");

  serve::FrontEndOptions fe;
  fe.limits.max_rows = 50'000'000;
  fe.limits.max_bytes = static_cast<size_t>(1) << 40;
  fe.limits.max_depth = 64;
  fe.admission.queue_capacity = 4096;  // fullness ~0: brownout never moves
  fe.breaker.failure_threshold = 1.1;  // ratio tops out at 1.0: never trips
  fe.harden.enabled = false;
  serve::ServeFrontEnd unhardened(&pipeline, &bench, fe);
  fe.harden.enabled = true;
  serve::ServeFrontEnd hardened(&pipeline, &bench, fe);

  auto run = [&](serve::ServeFrontEnd& front_end) {
    Timer timer;
    int n = 0;
    while (n < queries) {
      for (const auto& sample : bench.dev) {
        if (n >= queries) break;
        std::string sql;
        (void)front_end.Serve(sample, &sql);
        ++n;
      }
    }
    return timer.ElapsedSeconds();
  };

  // Interleaved best-of-3, exactly like the admission section.
  double best_off = run(unhardened);
  double best_on = run(hardened);
  for (int rep = 1; rep < 3; ++rep) {
    best_off = std::min(best_off, run(unhardened));
    best_on = std::min(best_on, run(hardened));
  }
  double overhead_pct = 100.0 * (best_on - best_off) / best_off;

  bench::TablePrinter table({24, 12, 14});
  table.Row({"path", "seconds", "ms / sample"});
  table.Separator();
  table.Row({"Serve, harden off", FormatDouble(best_off, 3),
             FormatDouble(1000.0 * best_off / queries, 3)});
  table.Row({"Serve, harden on", FormatDouble(best_on, 3),
             FormatDouble(1000.0 * best_on / queries, 3)});
  std::printf("\nhardening overhead on clean traffic: %+.2f%% "
              "(budget: <= 2%%)\n",
              overhead_pct);
  report->AddNoisy("hardening_overhead_pct", overhead_pct);
}

void Run(bench::PerfReport* report, bool quick) {
  HotPathSection(report, quick);
  StorageAccessPathSection(report, quick);
  DurabilitySection(report, quick);

  bench::Banner("Table 1: model capacity profiles");
  bench::TablePrinter arch({12, 8, 8, 8, 8, 8, 8, 8});
  arch.Row({"model", "params", "hidden", "ffn", "heads", "blocks", "ctx",
            "ngram"});
  arch.Separator();
  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);
  for (int i = 0; i < count; ++i) {
    const CapacityProfile& p = ProfileFor(sizes[i]);
    arch.Row({p.name, FormatDouble(p.params_billion, 0) + "B",
              std::to_string(p.hidden_size), std::to_string(p.ffn_size),
              std::to_string(p.attention_heads),
              std::to_string(p.transformer_blocks),
              std::to_string(p.max_context_tokens),
              std::to_string(p.ngram_order)});
  }

  bench::Banner("Section 9.7: inference latency per sample (SFT, Spider)");
  auto spider = BuildSpiderLike();
  LmZoo zoo;
  bench::TablePrinter table({12, 16, 14});
  table.Row({"model", "ms / sample", "samples / s"});
  table.Separator();
  // The quick (CI) profile measures only the 7B point of the scale sheet:
  // training four model sizes dominates wall-clock and the JSON schema
  // carries no per-size metrics.
  for (int i = 0; i < count; ++i) {
    ModelSize size = sizes[i];
    if (quick && size != ModelSize::k7B) continue;
    PipelineConfig config;
    config.size = size;
    CodesPipeline pipeline(config, zoo.CodesFor(size));
    pipeline.TrainClassifier(spider);
    pipeline.FineTune(spider);
    // Warm the per-database retriever caches so we time inference only.
    for (const auto& sample : spider.dev) {
      pipeline.BuildPrompt(spider, sample);
      break;
    }
    Timer timer;
    int n = 0;
    for (const auto& sample : spider.dev) {
      (void)pipeline.Predict(spider, sample);
      ++n;
      if (n >= 100) break;
    }
    double seconds = timer.ElapsedSeconds();
    table.Row({ModelSizeName(size), FormatDouble(1000.0 * seconds / n, 2),
               FormatDouble(n / seconds, 1)});
  }
  std::printf(
      "\npaper reference: 0.6 / 0.9 / 1.1 / 1.5 seconds per sample on an "
      "A800; DIN-SQL + GPT-4 needs ~60 s per sample.\n");

  {
    PipelineConfig config;
    config.size = ModelSize::k7B;
    CodesPipeline pipeline(config, zoo.CodesFor(config.size));
    pipeline.TrainClassifier(spider);
    pipeline.FineTune(spider);
    const int q = quick ? 80 : 300;
    ThroughputSection(spider, pipeline, /*samples=*/quick ? 80 : 200);
    GuardOverheadSection(spider, pipeline, q, report);
    StageAttributionSection(spider, pipeline, q, report);
    InstrumentationOverheadSection(spider, pipeline, q, report);
    ChaosTailLatencySection(spider, pipeline, /*queries=*/quick ? 150 : 500);
    OverloadGoodputSection(spider, pipeline);
    AdmissionOverheadSection(spider, pipeline, q, report);
    HardeningOverheadSection(spider, pipeline, q, report);
  }
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  const bool quick = codes::bench::QuickRequested(argc, argv);
  codes::bench::PerfReport report("latency", quick ? "quick" : "full");
  report.SetCalibration(codes::bench::CalibrateOpsPerSec());
  codes::Run(&report, quick);
  codes::bench::WriteMetricsIfRequested(argc, argv);
  if (!report.WriteIfRequested(argc, argv)) return 1;
  return 0;
}
