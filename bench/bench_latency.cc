// Reproduces Section 9.7 (latency/deployment) and prints the Table 1
// architecture sheet: per-sample inference latency by model scale, plus
// the capacity profiles standing in for the transformer hyper-parameters.
//
// Paper shape to reproduce: latency grows with scale but stays far below
// API-based systems (DIN-SQL + GPT-4 at ~60 s/sample); the ratio between
// 15B and 1B is modest (~2.5x).

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"

namespace codes {
namespace {

void Run() {
  bench::Banner("Table 1: model capacity profiles");
  bench::TablePrinter arch({12, 8, 8, 8, 8, 8, 8, 8});
  arch.Row({"model", "params", "hidden", "ffn", "heads", "blocks", "ctx",
            "ngram"});
  arch.Separator();
  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);
  for (int i = 0; i < count; ++i) {
    const CapacityProfile& p = ProfileFor(sizes[i]);
    arch.Row({p.name, FormatDouble(p.params_billion, 0) + "B",
              std::to_string(p.hidden_size), std::to_string(p.ffn_size),
              std::to_string(p.attention_heads),
              std::to_string(p.transformer_blocks),
              std::to_string(p.max_context_tokens),
              std::to_string(p.ngram_order)});
  }

  bench::Banner("Section 9.7: inference latency per sample (SFT, Spider)");
  auto spider = BuildSpiderLike();
  LmZoo zoo;
  bench::TablePrinter table({12, 16, 14});
  table.Row({"model", "ms / sample", "samples / s"});
  table.Separator();
  for (int i = 0; i < count; ++i) {
    ModelSize size = sizes[i];
    PipelineConfig config;
    config.size = size;
    CodesPipeline pipeline(config, zoo.CodesFor(size));
    pipeline.TrainClassifier(spider);
    pipeline.FineTune(spider);
    // Warm the per-database retriever caches so we time inference only.
    for (const auto& sample : spider.dev) {
      pipeline.BuildPrompt(spider, sample);
      break;
    }
    Timer timer;
    int n = 0;
    for (const auto& sample : spider.dev) {
      (void)pipeline.Predict(spider, sample);
      ++n;
      if (n >= 100) break;
    }
    double seconds = timer.ElapsedSeconds();
    table.Row({ModelSizeName(size), FormatDouble(1000.0 * seconds / n, 2),
               FormatDouble(n / seconds, 1)});
  }
  std::printf(
      "\npaper reference: 0.6 / 0.9 / 1.1 / 1.5 seconds per sample on an "
      "A800; DIN-SQL + GPT-4 needs ~60 s per sample.\n");
}

}  // namespace
}  // namespace codes

int main() {
  codes::Run();
  return 0;
}
