// Thin throughput harness for the CI perf gate: queries/sec of the
// parallel batched evaluator (7B SFT) at 1 and 8 threads, with the EX
// metric asserted identical across thread counts, written to
// BENCH_throughput.json via --json-out. bench_latency prints the full
// 1/2/4/8 paper table; this binary exists so the perf job can harvest a
// machine-readable snapshot without paying for the whole latency sheet.
//
// Schema notes (DESIGN.md section 13): the 1-thread rate is gated
// (calibration-normalized); the 8-thread rate and scaling factor depend
// on the runner's core count, so they ride in the noisy allowlist.

#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_common.h"
#include "bench/perf_report.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "eval/parallel_eval.h"

namespace codes {
namespace {

void Run(bench::PerfReport* report, bool quick) {
  bench::Banner("Throughput: parallel batched evaluation (7B SFT)");
  std::printf("hardware threads: %d\n", ThreadPool::ResolveThreadCount(0));

  auto spider = BuildSpiderLike();
  LmZoo zoo;
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(spider);
  pipeline.FineTune(spider);

  // Warm the per-database retriever cache so both thread counts measure
  // inference, not index construction.
  std::set<int> warmed;
  for (const auto& sample : spider.dev) {
    if (warmed.insert(sample.db_index).second) {
      (void)pipeline.BuildPrompt(spider, sample);
    }
  }

  const int samples = quick ? 80 : 200;
  bench::TablePrinter table({10, 12, 12, 10, 8});
  table.Row({"threads", "seconds", "queries/s", "speedup", "EX%"});
  table.Separator();
  double qps_1t = 0.0;
  double qps_8t = 0.0;
  double ex_1t = 0.0;
  for (int threads : {1, 8}) {
    EvalOptions options;
    options.num_threads = threads;
    options.max_samples = samples;
    Timer timer;
    EvalResult result =
        ParallelEvaluateDevSet(spider, pipeline.PredictorFor(spider), options);
    double seconds = timer.ElapsedSeconds();
    double qps = result.metrics.n / seconds;
    if (threads == 1) {
      qps_1t = qps;
      ex_1t = result.metrics.ex;
    } else {
      qps_8t = qps;
      // The determinism contract: sharding must not move accuracy.
      CODES_CHECK(result.metrics.ex == ex_1t);
    }
    table.Row({std::to_string(threads), FormatDouble(seconds, 2),
               FormatDouble(qps, 1),
               FormatDouble(qps / qps_1t, 2) + "x", bench::Pct(result.metrics.ex)});
  }
  std::printf(
      "\nEX%% is asserted identical across thread counts: the driver "
      "shards deterministically and merges in sample order.\n");

  report->Add("eval_qps_1t_per_sec", qps_1t);
  report->AddNoisy("eval_qps_8t_per_sec", qps_8t);
  report->AddNoisy("eval_scaling_8t_speedup_x", qps_8t / qps_1t);
  report->Add("eval_ex_pct", ex_1t);
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  const bool quick = codes::bench::QuickRequested(argc, argv);
  codes::bench::PerfReport report("throughput", quick ? "quick" : "full");
  report.SetCalibration(codes::bench::CalibrateOpsPerSec());
  codes::Run(&report, quick);
  if (!report.WriteIfRequested(argc, argv)) return 1;
  return 0;
}
