// Thin throughput harness for the CI perf gate: queries/sec of the
// parallel batched evaluator (7B SFT) at 1 and 8 threads, with the EX
// metric asserted identical across thread counts, written to
// BENCH_throughput.json via --json-out. bench_latency prints the full
// 1/2/4/8 paper table; this binary exists so the perf job can harvest a
// machine-readable snapshot without paying for the whole latency sheet.
//
// Schema notes (DESIGN.md section 13): the 1-thread rate is gated
// (calibration-normalized); the 8-thread rate and scaling factor depend
// on the runner's core count, so they ride in the noisy allowlist.

#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_common.h"
#include "bench/perf_report.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "eval/parallel_eval.h"
#include "serve/load_gen.h"

namespace codes {
namespace {

/// Goodput under perturbation (ISSUE 10): the codes_load --adv campaign
/// against its clean twin — identical seed and arrival schedule, 30% of
/// requests mutated by the online question perturbations before dispatch.
/// Both goodput numbers are virtual-time DES results, pure functions of
/// (seed, options), so they gate as exact metrics rather than noisy ones;
/// the retention ratio rides in the noisy list only because plain _pct
/// keys classify as lower-is-better raw values.
void AdversarialGoodputSection(const Text2SqlBenchmark& bench,
                               const CodesPipeline& pipeline,
                               bench::PerfReport* report) {
  bench::Banner("Goodput under perturbation (codes_load --adv)");

  serve::LoadGenOptions adv;
  adv.seed = 20240809;
  adv.num_requests = 600;
  adv.offered_qps = 400.0;  // 2x the 4x50/s virtual capacity
  adv.virtual_workers = 4;
  adv.service_base_us = 20'000;
  adv.deadline_us = 200'000;
  adv.threads = 2;  // any value produces the same report — that's the DES
  adv.front_end.admission.queue_capacity = 64;
  adv.harden = true;
  adv.adv_rate = 0.3;
  serve::LoadGenOptions clean = adv;
  clean.adv_rate = 0.0;

  serve::LoadReport clean_report =
      serve::RunLoadCampaign(pipeline, bench, clean);
  serve::LoadReport adv_report = serve::RunLoadCampaign(pipeline, bench, adv);

  double clean_goodput = clean_report.VerifiedGoodputQps();
  double adv_goodput = adv_report.VerifiedGoodputQps();
  double retention_pct =
      clean_goodput > 0.0 ? 100.0 * adv_goodput / clean_goodput : 100.0;

  bench::TablePrinter table({10, 10, 10, 10, 12, 14});
  table.Row({"traffic", "offered", "mutated", "suspect", "verified<dl",
             "goodput qps"});
  table.Separator();
  table.Row({"clean", std::to_string(clean_report.offered),
             std::to_string(clean_report.adv_offered),
             std::to_string(clean_report.suspect),
             std::to_string(clean_report.verified_within_deadline),
             FormatDouble(clean_goodput, 1)});
  table.Row({"adv 30%", std::to_string(adv_report.offered),
             std::to_string(adv_report.adv_offered),
             std::to_string(adv_report.suspect),
             std::to_string(adv_report.verified_within_deadline),
             FormatDouble(adv_goodput, 1)});
  std::printf(
      "\ngoodput retention under 30%% perturbation: %.1f%% "
      "(budget: >= 80%%)\ncanonical retries spent: %llu, rescued: %llu; "
      "suspects enter pre-degraded at brownout level 2, which is why "
      "retention can exceed 100%%.\n",
      retention_pct,
      static_cast<unsigned long long>(adv_report.canonical_retries),
      static_cast<unsigned long long>(adv_report.canonical_served));
  CODES_CHECK(adv_report.adv_offered > 0);
  CODES_CHECK(adv_report.suspect > 0);
  CODES_CHECK(adv_goodput >= 0.8 * clean_goodput);

  report->Add("clean_verified_goodput_qps", clean_goodput);
  report->Add("adv_verified_goodput_qps", adv_goodput);
  report->AddNoisy("adv_goodput_retention_pct", retention_pct);
}

void Run(bench::PerfReport* report, bool quick) {
  bench::Banner("Throughput: parallel batched evaluation (7B SFT)");
  std::printf("hardware threads: %d\n", ThreadPool::ResolveThreadCount(0));

  auto spider = BuildSpiderLike();
  LmZoo zoo;
  PipelineConfig config;
  config.size = ModelSize::k7B;
  CodesPipeline pipeline(config, zoo.CodesFor(config.size));
  pipeline.TrainClassifier(spider);
  pipeline.FineTune(spider);

  // Warm the per-database retriever cache so both thread counts measure
  // inference, not index construction.
  std::set<int> warmed;
  for (const auto& sample : spider.dev) {
    if (warmed.insert(sample.db_index).second) {
      (void)pipeline.BuildPrompt(spider, sample);
    }
  }

  const int samples = quick ? 80 : 200;
  bench::TablePrinter table({10, 12, 12, 10, 8});
  table.Row({"threads", "seconds", "queries/s", "speedup", "EX%"});
  table.Separator();
  double qps_1t = 0.0;
  double qps_8t = 0.0;
  double ex_1t = 0.0;
  for (int threads : {1, 8}) {
    EvalOptions options;
    options.num_threads = threads;
    options.max_samples = samples;
    Timer timer;
    EvalResult result =
        ParallelEvaluateDevSet(spider, pipeline.PredictorFor(spider), options);
    double seconds = timer.ElapsedSeconds();
    double qps = result.metrics.n / seconds;
    if (threads == 1) {
      qps_1t = qps;
      ex_1t = result.metrics.ex;
    } else {
      qps_8t = qps;
      // The determinism contract: sharding must not move accuracy.
      CODES_CHECK(result.metrics.ex == ex_1t);
    }
    table.Row({std::to_string(threads), FormatDouble(seconds, 2),
               FormatDouble(qps, 1),
               FormatDouble(qps / qps_1t, 2) + "x", bench::Pct(result.metrics.ex)});
  }
  std::printf(
      "\nEX%% is asserted identical across thread counts: the driver "
      "shards deterministically and merges in sample order.\n");

  report->Add("eval_qps_1t_per_sec", qps_1t);
  report->AddNoisy("eval_qps_8t_per_sec", qps_8t);
  report->AddNoisy("eval_scaling_8t_speedup_x", qps_8t / qps_1t);
  report->Add("eval_ex_pct", ex_1t);

  AdversarialGoodputSection(spider, pipeline, report);
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  const bool quick = codes::bench::QuickRequested(argc, argv);
  codes::bench::PerfReport report("throughput", quick ? "quick" : "full");
  report.SetCalibration(codes::bench::CalibrateOpsPerSec());
  codes::Run(&report, quick);
  if (!report.WriteIfRequested(argc, argv)) return 1;
  return 0;
}
