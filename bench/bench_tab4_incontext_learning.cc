// Reproduces Table 4: few-shot in-context learning of open-source LLMs vs
// CodeS, at 1/3/5 shots, on Spider-like (TS%) and BIRD-like (EX%, with and
// without external knowledge).
//
// Paper shape to reproduce:
//  * incremental pre-training (CodeS rows) beats each base model;
//  * smaller models gain more from pre-training than larger ones;
//  * more shots help; larger models rank higher; EK helps on BIRD.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"

namespace codes {
namespace {

constexpr int kMaxSamples = 60;

EvalMetrics RunOne(const Text2SqlBenchmark& benchmark, const LmZoo& zoo,
                   const BaselineSpec& spec, int shots, bool use_ek,
                   bool compute_ts) {
  PipelineConfig config;
  config.size = spec.profile;
  config.icl_shots = shots;
  config.prompt.top_k1 = 5;  // paper shrinks k1/k2 in few-shot mode
  config.prompt.top_k2 = 6;
  config.use_external_knowledge = use_ek;
  config.extra_model_noise = spec.extra_noise;
  CodesPipeline pipeline(config, spec.sql_pretrained
                                     ? zoo.CodesFor(spec.profile)
                                     : zoo.BaseFor(spec.profile));
  pipeline.TrainClassifier(benchmark);
  pipeline.SetDemonstrationPool(benchmark.train);
  EvalOptions options;
  options.max_samples = kMaxSamples;
  options.num_threads = 0;  // parallel evaluation: shard dev set over all cores
  options.compute_ts = compute_ts;
  options.ts_instances = 2;
  return EvaluateDevSet(benchmark, pipeline.PredictorFor(benchmark), options);
}

void Run() {
  bench::Banner(
      "Table 4: few-shot in-context learning (Spider TS% | BIRD EX% | BIRD "
      "w/EK EX%)");
  auto spider = BuildSpiderLike();
  auto bird = BuildBirdLike();
  LmZoo zoo;

  bench::TablePrinter table({20, 6, 6, 6, 6, 6, 6, 6, 6, 6});
  table.Row({"LLM", "sp-1", "sp-3", "sp-5", "bd-1", "bd-3", "bd-5", "ek-1",
             "ek-3", "ek-5"});
  table.Separator();
  for (const auto& spec : Table4Baselines()) {
    std::vector<std::string> row{spec.name};
    for (int shots : {1, 3, 5}) {
      auto m = RunOne(spider, zoo, spec, shots, false, /*compute_ts=*/true);
      row.push_back(bench::Pct(m.ts));
    }
    for (int shots : {1, 3, 5}) {
      auto m = RunOne(bird, zoo, spec, shots, false, /*compute_ts=*/false);
      row.push_back(bench::Pct(m.ex));
    }
    for (int shots : {1, 3, 5}) {
      auto m = RunOne(bird, zoo, spec, shots, true, /*compute_ts=*/false);
      row.push_back(bench::Pct(m.ex));
    }
    table.Row(row);
  }
  std::printf(
      "\npaper shape: CodeS-* > StarCoder* > CodeGen*/Llama2 at matched "
      "size; gains from incremental pre-training shrink with size.\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
