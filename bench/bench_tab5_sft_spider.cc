// Reproduces Table 5: supervised fine-tuning on Spider's dev set (EX%/TS%).
//
// Paper shape to reproduce: accuracy grows 1B -> 3B -> 7B and saturates at
// 15B (7B ~= 15B); fine-tuned CodeS beats the fine-tuned Llama-2 proxies.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"

namespace codes {
namespace {

EvalMetrics SftRun(const Text2SqlBenchmark& benchmark, const LmZoo& zoo,
                   ModelSize size, bool sql_pretrained, double extra_noise) {
  PipelineConfig config;
  config.size = size;
  config.extra_model_noise = extra_noise;
  CodesPipeline pipeline(config, sql_pretrained ? zoo.CodesFor(size)
                                                : zoo.BaseFor(size));
  pipeline.TrainClassifier(benchmark);
  pipeline.FineTune(benchmark);
  EvalOptions options;
  options.compute_ts = true;
  options.ts_instances = 3;
  options.num_threads = 0;  // parallel evaluation: shard dev set over all cores
  return EvaluateDevSet(benchmark, pipeline.PredictorFor(benchmark), options);
}

void Run() {
  bench::Banner("Table 5: SFT on Spider-like dev (EX% / TS%)");
  auto spider = BuildSpiderLike();
  LmZoo zoo;

  bench::TablePrinter table({24, 8, 8});
  table.Row({"Method", "EX%", "TS%"});
  table.Separator();
  struct RowSpec {
    const char* name;
    ModelSize size;
    bool sql_pretrained;
    double extra_noise;
  };
  const RowSpec kRows[] = {
      {"SFT Llama2-7B", ModelSize::k7B, false, 0.42},
      {"SFT Llama2-13B", ModelSize::k15B, false, 0.36},
      {"SFT CodeS-1B", ModelSize::k1B, true, 0.0},
      {"SFT CodeS-3B", ModelSize::k3B, true, 0.0},
      {"SFT CodeS-7B", ModelSize::k7B, true, 0.0},
      {"SFT CodeS-15B", ModelSize::k15B, true, 0.0},
  };
  for (const auto& row : kRows) {
    auto m = SftRun(spider, zoo, row.size, row.sql_pretrained,
                    row.extra_noise);
    table.Row({row.name, bench::Pct(m.ex), bench::Pct(m.ts)});
  }
  std::printf(
      "\npaper reference (EX/TS): Llama2-7B 77.8/73.0, Llama2-13B 81.6/76.6, "
      "CodeS 1B 77.9/72.2, 3B 83.4/78.1, 7B 85.4/80.3, 15B 84.9/79.4\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
