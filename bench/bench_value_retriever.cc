// Reproduces the Section 6.2 efficiency claim: the coarse-to-fine value
// retriever (BM25 index + LCS re-ranking of a few hundred candidates) vs
// brute-force LCS over every database value, across database sizes.
//
// Paper shape to reproduce: coarse-to-fine latency stays near-constant as
// the value count grows, while brute-force LCS scales linearly — orders of
// magnitude slower on value-heavy databases.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "dataset/value_pool.h"
#include "retrieval/value_retriever.h"
#include "sqlengine/catalog.h"
#include "sqlengine/database.h"

namespace codes {
namespace {

/// A single-table database with `num_values` text values.
std::unique_ptr<sql::Database> MakeValueHeavyDb(int num_values) {
  sql::DatabaseSchema schema;
  schema.name = "values_" + std::to_string(num_values);
  sql::TableDef table;
  table.name = "entries";
  table.columns = {
      {"entry_id", sql::DataType::kInteger, "", true},
      {"person", sql::DataType::kText, "", false},
      {"place", sql::DataType::kText, "", false},
  };
  schema.tables.push_back(table);
  auto db = std::make_unique<sql::Database>(std::move(schema));
  Rng rng(99);
  for (int i = 0; i < num_values / 2; ++i) {
    // Suffix a counter so every value is distinct (the name pools alone
    // would collapse under the retriever's dedup).
    std::string person =
        DrawValue(ValueKind::kPersonName, i, rng).AsText() + " " +
        std::to_string(i);
    std::string place = DrawValue(ValueKind::kCity, i, rng).AsText() + " " +
                        std::to_string(i);
    CODES_CHECK(db->Insert("entries",
                           {sql::Value(static_cast<int64_t>(i + 1)),
                            sql::Value(std::move(person)),
                            sql::Value(std::move(place))})
                    .ok());
  }
  return db;
}

const std::string kQuestion =
    "How many clients opened their accounts in Jesenik branch were women?";

void BM_CoarseToFineRetrieval(benchmark::State& state) {
  auto db = MakeValueHeavyDb(static_cast<int>(state.range(0)));
  ValueRetriever retriever;
  retriever.BuildIndex(*db);
  for (auto _ : state) {
    auto hits = retriever.Retrieve(kQuestion, 200, 6);
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(std::to_string(retriever.NumIndexedValues()) + " values");
}
BENCHMARK(BM_CoarseToFineRetrieval)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BruteForceLcs(benchmark::State& state) {
  auto db = MakeValueHeavyDb(static_cast<int>(state.range(0)));
  ValueRetriever retriever;
  retriever.BuildIndex(*db);
  for (auto _ : state) {
    auto hits = retriever.RetrieveBruteForce(kQuestion, 6);
    benchmark::DoNotOptimize(hits);
  }
  state.SetLabel(std::to_string(retriever.NumIndexedValues()) + " values");
}
BENCHMARK(BM_BruteForceLcs)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IndexConstruction(benchmark::State& state) {
  auto db = MakeValueHeavyDb(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ValueRetriever retriever;
    retriever.BuildIndex(*db);
    benchmark::DoNotOptimize(retriever);
  }
}
BENCHMARK(BM_IndexConstruction)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace codes

BENCHMARK_MAIN();
