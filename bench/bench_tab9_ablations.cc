// Reproduces Table 9: ablations of the demonstration retriever, schema
// filter, value retriever, and prompt metadata, under 3-shot in-context
// learning on Spider-like (TS%) and BIRD-like (EX%).
//
// Paper shape to reproduce:
//  * removing the value retriever hurts BIRD far more than Spider;
//  * removing comments hurts BIRD (ambiguous schemas), barely Spider;
//  * removing primary/foreign keys hurts JOIN-heavy questions everywhere;
//  * removing representative values hurts BIRD;
//  * pattern-aware demonstration retrieval beats plain/random retrieval.

#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"

namespace codes {
namespace {

constexpr int kMaxSamples = 70;

struct Ablation {
  const char* name;
  std::function<void(PipelineConfig&)> apply;
};

void Run() {
  bench::Banner(
      "Table 9: 3-shot ICL ablations (Spider-like TS% | BIRD-like EX%)");
  auto spider = BuildSpiderLike();
  auto bird = BuildBirdLike();
  LmZoo zoo;

  const Ablation kAblations[] = {
      {"original", [](PipelineConfig&) {}},
      {"-w/o pattern similarity",
       [](PipelineConfig& c) { c.use_pattern_similarity = false; }},
      {"-w/o demonstration retriever",
       [](PipelineConfig& c) { c.random_demonstrations = true; }},
      {"-w/o schema filter",
       [](PipelineConfig& c) { c.prompt.use_schema_filter = false; }},
      {"-w/o value retriever",
       [](PipelineConfig& c) { c.prompt.use_value_retriever = false; }},
      {"-w/o column data types",
       [](PipelineConfig& c) { c.prompt.include_column_types = false; }},
      {"-w/o comments",
       [](PipelineConfig& c) { c.prompt.include_comments = false; }},
      {"-w/o representative values",
       [](PipelineConfig& c) {
         c.prompt.include_representative_values = false;
       }},
      {"-w/o primary and foreign keys",
       [](PipelineConfig& c) { c.prompt.include_keys = false; }},
  };

  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);
  bench::TablePrinter table({30, 9, 9, 9, 9, 9, 9, 9, 9});
  std::vector<std::string> header{"Ablation"};
  for (int i = 0; i < count; ++i) header.push_back("sp-" + ModelSizeName(sizes[i]).substr(6));
  for (int i = 0; i < count; ++i) header.push_back("bd-" + ModelSizeName(sizes[i]).substr(6));
  table.Row(header);
  table.Separator();

  for (const auto& ablation : kAblations) {
    std::vector<std::string> row{ablation.name};
    for (const Text2SqlBenchmark* benchmark : {&spider, &bird}) {
      bool is_spider = (benchmark == &spider);
      for (int i = 0; i < count; ++i) {
        PipelineConfig config;
        config.size = sizes[i];
        config.icl_shots = 3;
        config.prompt.top_k1 = 5;
        config.prompt.top_k2 = 6;
        config.use_external_knowledge = false;
        ablation.apply(config);
        CodesPipeline pipeline(config, zoo.CodesFor(sizes[i]));
        pipeline.TrainClassifier(*benchmark);
        pipeline.SetDemonstrationPool(benchmark->train);
        EvalOptions options;
        options.max_samples = kMaxSamples;
        options.num_threads = 0;  // parallel evaluation over all cores
        options.compute_ts = is_spider;
        options.ts_instances = 2;
        auto m = EvaluateDevSet(*benchmark,
                                pipeline.PredictorFor(*benchmark), options);
        row.push_back(bench::Pct(is_spider ? m.ts : m.ex));
      }
    }
    table.Row(row);
  }
  std::printf(
      "\npaper shape: value retriever and keys matter most on BIRD; "
      "comments matter on BIRD; types barely matter.\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
