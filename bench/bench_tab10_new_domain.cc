// Reproduces Table 10: new-domain adaptation on Bank-Financials and
// Aminer-Simplified via bi-directional data augmentation, with EX% and the
// human-evaluation proxy HE%.
//
// Paper shape to reproduce:
//  * zero-shot transfer of Spider/BIRD-fine-tuned models scores low on EX
//    (annotation/phrasing mismatch) but much higher on HE;
//  * 3-shot ICL beats zero-shot transfer;
//  * SFT on augmented data is the strongest single-domain option;
//  * merged training matches or beats per-domain SFT.

#include <cstdio>

#include "augment/augmentation.h"
#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "eval/parallel_eval.h"

namespace codes {
namespace {

struct MethodResult {
  double ex = 0;
  double he = 0;
};

MethodResult Evaluate(const Text2SqlBenchmark& domain_bench,
                      const CodesPipeline& pipeline) {
  // Predict on every core, then score serially in sample order (the HE
  // metric needs LenientExecutionMatch, which EvalMetrics doesn't carry).
  std::vector<std::string> predictions = ParallelPredict(
      domain_bench, pipeline.PredictorFor(domain_bench), /*num_threads=*/0);
  int n = 0;
  double ex = 0, he = 0;
  for (size_t i = 0; i < domain_bench.dev.size(); ++i) {
    const auto& sample = domain_bench.dev[i];
    const sql::Database& db = domain_bench.DbOf(sample);
    if (ExecutionMatch(db, predictions[i], sample.sql)) ex += 1;
    if (LenientExecutionMatch(db, predictions[i], sample.sql)) he += 1;
    ++n;
  }
  MethodResult result;
  if (n > 0) {
    result.ex = 100.0 * ex / n;
    result.he = 100.0 * he / n;
  }
  return result;
}

void Run() {
  bench::Banner("Table 10: new-domain adaptation (EX% / HE%)");
  auto spider = BuildSpiderLike();
  auto bird = BuildBirdLike();
  LmZoo zoo;
  const NgramLm* lm = zoo.CodesFor(ModelSize::k7B);

  AugmentOptions aug;
  auto bank = BuildNewDomainDataset(BankFinancialsDomain(), 91, aug);
  AugmentOptions aug2;
  aug2.seed = 2025;
  auto aminer = BuildNewDomainDataset(AminerSimplifiedDomain(), 97, aug2);

  bench::TablePrinter table({34, 9, 9, 9, 9});
  table.Row({"Method", "bank-EX", "bank-HE", "amnr-EX", "amnr-HE"});
  table.Separator();

  auto print_row = [&table](const std::string& name, MethodResult b,
                            MethodResult a) {
    table.Row({name, bench::Pct(b.ex), bench::Pct(b.he), bench::Pct(a.ex),
               bench::Pct(a.he)});
  };

  // 3-shot GPT-3.5 proxy: a large base-corpus model, no SQL-centric
  // pre-training, strong decoding.
  {
    PipelineConfig config;
    config.size = ModelSize::k15B;
    config.icl_shots = 3;
    config.extra_model_noise = 0.05;
    CodesPipeline p_bank(config, zoo.BaseFor(config.size));
    p_bank.TrainClassifier(bird);
    p_bank.SetDemonstrationPool(bank.seeds);
    CodesPipeline p_aminer(config, zoo.BaseFor(config.size));
    p_aminer.TrainClassifier(bird);
    p_aminer.SetDemonstrationPool(aminer.seeds);
    print_row("3-shot GPT-3.5 (proxy)", Evaluate(bank.bench, p_bank),
              Evaluate(aminer.bench, p_aminer));
  }

  // Zero-shot transfer: CodeS-7B fine-tuned on Spider / BIRD.
  for (const auto* source : {&spider, &bird}) {
    PipelineConfig config;
    config.size = ModelSize::k7B;
    CodesPipeline pipeline(config, lm);
    pipeline.TrainClassifier(*source);
    pipeline.FineTune(*source);
    std::string name = (source == &spider) ? "SFT CodeS-7B using Spider"
                                           : "SFT CodeS-7B using BIRD w/ EK";
    print_row(name, Evaluate(bank.bench, pipeline),
              Evaluate(aminer.bench, pipeline));
  }

  // 3-shot CodeS-7B with the seed pairs as demonstrations.
  {
    PipelineConfig config;
    config.size = ModelSize::k7B;
    config.icl_shots = 3;
    CodesPipeline p_bank(config, lm);
    p_bank.TrainClassifier(bird);  // BIRD classifier transfers (Section 9.6)
    p_bank.SetDemonstrationPool(bank.seeds);
    CodesPipeline p_aminer(config, lm);
    p_aminer.TrainClassifier(bird);
    p_aminer.SetDemonstrationPool(aminer.seeds);
    print_row("3-shot CodeS-7B", Evaluate(bank.bench, p_bank),
              Evaluate(aminer.bench, p_aminer));
  }

  // SFT on the augmented data (per domain).
  {
    PipelineConfig config;
    config.size = ModelSize::k7B;
    CodesPipeline p_bank(config, lm);
    p_bank.TrainClassifier(bird);
    p_bank.FineTune(bank.bench);
    CodesPipeline p_aminer(config, lm);
    p_aminer.TrainClassifier(bird);
    p_aminer.FineTune(aminer.bench);
    print_row("SFT CodeS-7B using aug. data", Evaluate(bank.bench, p_bank),
              Evaluate(aminer.bench, p_aminer));
  }

  // SFT on merged data: Spider + BIRD + both new domains.
  {
    PipelineConfig config;
    config.size = ModelSize::k7B;
    CodesPipeline pipeline(config, lm);
    pipeline.TrainClassifier(bird);
    std::vector<Text2SqlSample> merged = spider.train;
    // Re-point db indexes is unnecessary: FineTune only reads questions
    // and SQL (template identification); masking uses no benchmark here.
    merged.insert(merged.end(), bird.train.begin(), bird.train.end());
    merged.insert(merged.end(), bank.bench.train.begin(),
                  bank.bench.train.end());
    merged.insert(merged.end(), aminer.bench.train.begin(),
                  aminer.bench.train.end());
    pipeline.FineTune(merged);
    print_row("SFT CodeS-7B using merged data", Evaluate(bank.bench, pipeline),
              Evaluate(aminer.bench, pipeline));
  }
  std::printf(
      "\npaper reference (bank EX/HE): transfer-from-Spider 11.0/73.6, "
      "3-shot CodeS-7B 61.5/78.0, aug 71.4/85.7, merged 65.9/84.6\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
