#ifndef CODES_BENCH_PERF_REPORT_H_
#define CODES_BENCH_PERF_REPORT_H_

// Machine-readable benchmark snapshots (BENCH_latency.json /
// BENCH_throughput.json). The schema contract (DESIGN.md section 13):
//
//  * the KEY SET is deterministic — two runs of the same binary on any
//    machine produce the same keys in the same order (std::map), only the
//    values move. codes_benchdiff hard-fails on any key-set drift, so a
//    metric rename is a reviewed schema change, not silent churn.
//  * `calibration_ops_per_sec` measures this machine's single-thread speed
//    on a fixed pinned workload (the reference LCS DP). codes_benchdiff
//    uses the committed/current calibration ratio to compare time and rate
//    metrics across machines of different speeds.
//  * `noisy` lists metrics excluded from the regression gate (reported
//    only): tiny overhead deltas and anything dependent on the runner's
//    core count.
//  * `profile` records quick vs full so CI never compares across query
//    budgets.
//
// Key suffixes carry the unit and the improvement direction for
// codes_benchdiff: `_us`/`_ms`/`_seconds` time-like lower-better
// (calibration-normalized), `_qps`/`_per_sec` rate-like higher-better
// (calibration-normalized), `_speedup_x` and `_ex_pct` raw higher-better,
// any other `_pct` raw lower-better.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "common/string_util.h"
#include "common/timer.h"
#include "text/similarity.h"

namespace codes::bench {

/// Collects named scalar metrics and writes them as deterministic-schema
/// JSON. Keys are emitted in sorted order; the field layout is fixed.
class PerfReport {
 public:
  PerfReport(std::string bench_name, std::string profile)
      : bench_name_(std::move(bench_name)), profile_(std::move(profile)) {}

  void SetCalibration(double ops_per_sec) { calibration_ = ops_per_sec; }

  /// A gated metric: codes_benchdiff fails the build when it regresses.
  void Add(const std::string& key, double value) { metrics_[key] = value; }

  /// A reported-only metric: listed in `noisy`, never gates.
  void AddNoisy(const std::string& key, double value) {
    metrics_[key] = value;
    noisy_.insert(key);
  }

  std::string ToJson() const {
    std::string out = "{\n";
    out += "  \"schema_version\": 1,\n";
    out += "  \"bench\": \"" + bench_name_ + "\",\n";
    out += "  \"profile\": \"" + profile_ + "\",\n";
    out += "  \"calibration_ops_per_sec\": " + Num(calibration_) + ",\n";
    out += "  \"noisy\": [";
    bool first = true;
    for (const auto& key : noisy_) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + key + "\"";
    }
    out += "],\n  \"metrics\": {\n";
    first = true;
    for (const auto& [key, value] : metrics_) {
      if (!first) out += ",\n";
      first = false;
      out += "    \"" + key + "\": " + Num(value);
    }
    out += "\n  }\n}\n";
    return out;
  }

  /// Writes the report to the path given by `--json-out=PATH`; a no-op
  /// when the flag is absent. Returns false on I/O failure.
  bool WriteIfRequested(int argc, char** argv) const {
    constexpr std::string_view kFlag = "--json-out=";
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (arg.substr(0, kFlag.size()) != kFlag) continue;
      std::string path(arg.substr(kFlag.size()));
      std::FILE* out = std::fopen(path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return false;
      }
      std::string json = ToJson();
      std::fwrite(json.data(), 1, json.size(), out);
      std::fclose(out);
      std::fprintf(stderr, "bench report written to %s\n", path.c_str());
    }
    return true;
  }

 private:
  static std::string Num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string bench_name_;
  std::string profile_;
  double calibration_ = 0.0;
  std::map<std::string, double> metrics_;
  std::set<std::string> noisy_;
};

/// True when `--quick` is among the arguments (the CI profile: smaller
/// query budgets, same sections, same JSON schema).
inline bool QuickRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") return true;
  }
  return false;
}

/// Single-thread machine-speed probe: iterations/sec of the pinned
/// reference LCS DP on a fixed input pair. The workload is deliberately
/// the *reference* implementation — it never changes with the code under
/// test (and ignores CODES_PERF_INJECT), so the committed/current ratio
/// isolates machine speed from code speed.
inline double CalibrateOpsPerSec() {
  std::string a, b;
  for (int i = 0; i < 160; ++i) {
    a += static_cast<char>('a' + (i * 7) % 17);
    b += static_cast<char>('a' + (i * 5) % 19);
  }
  // Warm once, then take the fastest of several timing windows: the
  // least-interrupted window is the best estimate of machine capability,
  // and the max is far more stable run-to-run than any single window
  // (scheduler noise only ever subtracts speed). The committed/current
  // ratio this feeds scales every normalized metric, so calibration
  // jitter would read as across-the-board regressions.
  (void)LongestCommonSubstringLengthReferenceDp(a, b);
  double best = 0.0;
  for (int window = 0; window < 5; ++window) {
    int iterations = 0;
    Timer timer;
    do {
      for (int i = 0; i < 8; ++i) {
        (void)LongestCommonSubstringLengthReferenceDp(a, b);
      }
      iterations += 8;
    } while (timer.ElapsedSeconds() < 0.1);
    best = std::max(best, iterations / timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace codes::bench

#endif  // CODES_BENCH_PERF_REPORT_H_
