#ifndef CODES_BENCH_BENCH_COMMON_H_
#define CODES_BENCH_BENCH_COMMON_H_

// Shared helpers for the table-reproduction harnesses. Each bench binary
// regenerates one table/figure of the paper and prints it in a fixed-width
// layout; EXPERIMENTS.md records the paper-vs-measured comparison.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"

namespace codes::bench {

/// Writes the global MetricsRegistry snapshot (JSON, schema in DESIGN.md)
/// to the path given by a `--metrics-out=PATH` argument; a no-op when the
/// flag is absent. Call at the end of a bench main so campaigns can
/// harvest machine-readable per-stage breakdowns alongside the printed
/// tables.
inline void WriteMetricsIfRequested(int argc, char** argv) {
  constexpr std::string_view kFlag = "--metrics-out=";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, kFlag.size()) != kFlag) continue;
    std::string path(arg.substr(kFlag.size()));
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::string json = MetricsRegistry::Global().SnapshotJson();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics snapshot written to %s\n", path.c_str());
  }
}

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<int> widths) : widths_(std::move(widths)) {}

  void Row(const std::vector<std::string>& cells) const {
    std::string line;
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      std::string cell = cells[i];
      int width = widths_[i];
      if (static_cast<int>(cell.size()) > width) cell.resize(width);
      line += cell;
      line.append(static_cast<size_t>(width - static_cast<int>(cell.size())),
                  ' ');
      line += "  ";
    }
    std::printf("%s\n", line.c_str());
  }

  void Separator() const {
    size_t total = 0;
    for (int w : widths_) total += static_cast<size_t>(w) + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
  }

 private:
  std::vector<int> widths_;
};

inline std::string Pct(double value) { return FormatDouble(value, 1); }
inline std::string Pct2(double value) { return FormatDouble(value, 2); }

inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace codes::bench

#endif  // CODES_BENCH_BENCH_COMMON_H_
