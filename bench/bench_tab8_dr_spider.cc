// Reproduces Table 8: the Dr.Spider diagnostic suite — 3 database
// perturbations, 9 question perturbations, 5 SQL-side test sets — for the
// four SFT CodeS scales, with per-category macro averages and the global
// average.
//
// Paper shape to reproduce: DB perturbations (especially schema
// abbreviation without comments) hurt the most; NLQ perturbations hurt
// moderately; larger models are more robust; the global average rises
// with scale and saturates at 7B/15B.

#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "dataset/perturb.h"

namespace codes {
namespace {

constexpr int kMaxSamples = 80;

void Run() {
  bench::Banner("Table 8: Dr.Spider perturbation suite (EX%)");
  auto spider = BuildSpiderLike();
  auto suite = BuildDrSpiderSuite(spider, 21);
  LmZoo zoo;

  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);

  // One fine-tuned pipeline per scale, reused across all 17 sets.
  std::vector<std::unique_ptr<CodesPipeline>> pipelines;
  for (int i = 0; i < count; ++i) {
    PipelineConfig config;
    config.size = sizes[i];
    auto pipeline = std::make_unique<CodesPipeline>(config,
                                                    zoo.CodesFor(sizes[i]));
    pipeline->TrainClassifier(spider);
    pipeline->FineTune(spider);
    pipelines.push_back(std::move(pipeline));
  }

  bench::TablePrinter table({6, 24, 6, 8, 8, 8, 8});
  table.Row({"Type", "Perturbation", "N", "1B", "3B", "7B", "15B"});
  table.Separator();

  std::map<std::string, std::vector<double>> category_sums;
  std::map<std::string, int> category_counts;
  std::vector<double> global_sums(static_cast<size_t>(count), 0.0);
  int global_count = 0;

  EvalOptions options;
  options.max_samples = kMaxSamples;
  options.num_threads = 0;  // parallel evaluation: shard dev set over all cores

  for (const auto& set : suite) {
    std::vector<std::string> row{set.category, set.name,
                                 std::to_string(set.bench.dev.size())};
    auto& sums = category_sums[set.category];
    if (sums.empty()) sums.assign(static_cast<size_t>(count), 0.0);
    for (int i = 0; i < count; ++i) {
      auto m = EvaluateDevSet(set.bench,
                              pipelines[i]->PredictorFor(set.bench), options);
      row.push_back(bench::Pct(m.ex));
      sums[static_cast<size_t>(i)] += m.ex;
      global_sums[static_cast<size_t>(i)] += m.ex;
    }
    category_counts[set.category] += 1;
    ++global_count;
    table.Row(row);
  }

  table.Separator();
  for (const auto& [category, sums] : category_sums) {
    std::vector<std::string> row{category, "macro-average", ""};
    for (int i = 0; i < count; ++i) {
      row.push_back(
          bench::Pct(sums[static_cast<size_t>(i)] / category_counts.at(category)));
    }
    table.Row(row);
  }
  std::vector<std::string> global_row{"All", "global average", ""};
  for (int i = 0; i < count; ++i) {
    global_row.push_back(
        bench::Pct(global_sums[static_cast<size_t>(i)] / global_count));
  }
  table.Row(global_row);
  std::printf(
      "\npaper reference global average: 1B 66.3, 3B 72.8, 7B 75.0, 15B "
      "75.1\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
