// Reproduces Table 6: supervised fine-tuning on BIRD-like dev (EX% and
// VES%), with and without external knowledge.
//
// Paper shape to reproduce: BIRD is much harder than Spider; EK lifts all
// scales; accuracy grows with scale with a small 7B->15B step; VES tracks
// EX (correct queries are about as efficient as gold).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"

namespace codes {
namespace {

void Run() {
  bench::Banner("Table 6: SFT on BIRD-like dev (EX% / VES%)");
  auto bird = BuildBirdLike();
  LmZoo zoo;

  bench::TablePrinter table({16, 8, 8, 10, 10});
  table.Row({"Method", "EX%", "VES%", "EX% w/EK", "VES% w/EK"});
  table.Separator();
  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);
  for (int i = 0; i < count; ++i) {
    ModelSize size = sizes[i];
    std::vector<std::string> row{"SFT " + ModelSizeName(size)};
    for (bool ek : {false, true}) {
      PipelineConfig config;
      config.size = size;
      config.use_external_knowledge = ek;
      CodesPipeline pipeline(config, zoo.CodesFor(size));
      pipeline.TrainClassifier(bird);
      pipeline.FineTune(bird);
      EvalOptions options;
      options.compute_ves = true;
      options.num_threads = 0;  // parallel evaluation: shard dev set over all cores
      auto m = EvaluateDevSet(bird, pipeline.PredictorFor(bird), options);
      row.push_back(bench::Pct(m.ex));
      row.push_back(bench::Pct(m.ves));
    }
    table.Row(row);
  }
  std::printf(
      "\npaper reference dev EX (no EK / w EK): 1B 38.5/50.5, 3B 43.4/55.0, "
      "7B 45.2/57.2, 15B 47.9/58.5\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
