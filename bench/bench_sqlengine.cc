// Micro-benchmarks of the SQL engine substrate: parsing, scans, hash vs
// nested-loop joins, and aggregation. Not a paper table; documents the
// substrate costs behind the EX/TS/VES metrics.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "dataset/benchmark_builder.h"
#include "dataset/db_generator.h"
#include "dataset/domains.h"
#include "sqlengine/executor.h"
#include "sqlengine/parser.h"

namespace codes {
namespace {

std::unique_ptr<sql::Database> MakeDb(int rows) {
  DbProfile profile = DbProfile::Spider();
  profile.min_rows = rows;
  profile.max_rows = rows;
  Rng rng(5);
  return std::make_unique<sql::Database>(
      GenerateDatabase(AllDomains()[0], profile, rng));
}

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT singer.name, COUNT(*) FROM concert JOIN singer ON "
      "concert.singer_id = singer.singer_id WHERE concert.year > 2000 "
      "GROUP BY singer.name HAVING COUNT(*) >= 2 ORDER BY COUNT(*) DESC "
      "LIMIT 5";
  for (auto _ : state) {
    auto stmt = sql::ParseSql(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseSelect);

void BM_FilteredScan(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  auto stmt = sql::ParseSql("SELECT name FROM singer WHERE age > 50");
  sql::Executor executor(*db);
  for (auto _ : state) {
    auto result = executor.Execute(**stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FilteredScan)->Arg(100)->Arg(1000);

void BM_HashJoin(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  auto stmt = sql::ParseSql(
      "SELECT singer.name, concert.concert_title FROM concert JOIN singer "
      "ON concert.singer_id = singer.singer_id");
  sql::Executor executor(*db);
  for (auto _ : state) {
    auto result = executor.Execute(**stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_HashJoin)->Arg(100)->Arg(1000);

void BM_NestedLoopThetaJoin(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  auto stmt = sql::ParseSql(
      "SELECT COUNT(*) FROM concert JOIN singer ON concert.singer_id < "
      "singer.singer_id");
  sql::Executor executor(*db);
  for (auto _ : state) {
    auto result = executor.Execute(**stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NestedLoopThetaJoin)->Arg(100)->Arg(400);

void BM_GroupAggregate(benchmark::State& state) {
  auto db = MakeDb(static_cast<int>(state.range(0)));
  auto stmt = sql::ParseSql(
      "SELECT country, COUNT(*), AVG(age) FROM singer GROUP BY country");
  sql::Executor executor(*db);
  for (auto _ : state) {
    auto result = executor.Execute(**stmt);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GroupAggregate)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace codes

BENCHMARK_MAIN();
