// Reproduces the Section 5 mechanism in isolation: perplexity of the base
// (StarCoder-like) language model vs the incrementally pre-trained CodeS
// language model on held-out SQL, at every n-gram order the model scales
// use.
//
// Paper shape to reproduce: incremental pre-training on the SQL-centric
// corpus sharply reduces SQL perplexity at every scale — the signal the
// downstream generator exploits when reranking candidates.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "corpus/pretrain_corpus.h"

namespace codes {
namespace {

void Run() {
  bench::Banner("Section 5: SQL perplexity, base vs incrementally pre-trained");
  LmZoo zoo;
  auto eval_set = BuildSqlEvalSet(300, 777);

  bench::TablePrinter table({8, 14, 14, 12});
  table.Row({"order", "base ppl", "codes ppl", "reduction"});
  table.Separator();
  for (int order = 2; order <= 5; ++order) {
    double base = zoo.Base(order).Perplexity(eval_set);
    double codes = zoo.Codes(order).Perplexity(eval_set);
    table.Row({std::to_string(order), FormatDouble(base, 1),
               FormatDouble(codes, 1),
               FormatDouble(base / codes, 1) + "x"});
  }
  std::printf(
      "\nexpected shape: multi-x perplexity reduction after incremental "
      "pre-training at every order.\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
