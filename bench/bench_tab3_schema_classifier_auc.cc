// Reproduces Table 3: table/column AUC of the schema item classifier on
// Spider-like, BIRD-like, and BIRD-like with external knowledge.
//
// Paper shape to reproduce: Spider AUC > BIRD AUC (ambiguous schemas hurt
// linking), and EK improves BIRD.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "dataset/benchmark_builder.h"
#include "linker/schema_classifier.h"

namespace codes {
namespace {

void Run() {
  bench::Banner("Table 3: schema item classifier AUC");
  auto spider = BuildSpiderLike();
  auto bird = BuildBirdLike();

  // The two trainings are independent, as are the three AUC sweeps; each
  // writes its own slot, so the pool changes wall-clock, not results.
  SchemaItemClassifier spider_classifier;
  SchemaItemClassifier bird_classifier;
  SchemaItemClassifier::TrainOptions options;
  ThreadPool pool(0);  // one worker per hardware thread
  pool.Submit([&] { spider_classifier.Train(spider, options); });
  pool.Submit([&] { bird_classifier.Train(bird, options); });
  pool.Wait();

  std::pair<double, double> spider_auc, bird_auc, bird_ek_auc;
  pool.Submit([&] {
    spider_auc = EvaluateClassifierAuc(spider_classifier, spider, false);
  });
  pool.Submit(
      [&] { bird_auc = EvaluateClassifierAuc(bird_classifier, bird, false); });
  pool.Submit([&] {
    bird_ek_auc = EvaluateClassifierAuc(bird_classifier, bird, true);
  });
  pool.Wait();
  auto [spider_t, spider_c] = spider_auc;
  auto [bird_t, bird_c] = bird_auc;
  auto [bird_ek_t, bird_ek_c] = bird_ek_auc;

  bench::TablePrinter table({12, 10, 10, 12});
  table.Row({"", "Spider", "BIRD", "BIRD w/ EK"});
  table.Separator();
  table.Row({"Table AUC", FormatDouble(spider_t, 3),
             FormatDouble(bird_t, 3),
             FormatDouble(bird_ek_t, 3)});
  table.Row({"Column AUC", FormatDouble(spider_c, 3),
             FormatDouble(bird_c, 3),
             FormatDouble(bird_ek_c, 3)});
  std::printf(
      "\npaper reference: table 0.991 / ~0.90 / 0.976 ; column 0.993 / "
      "0.943 / 0.957\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
