// Reproduces Figure 1: accuracy vs model size — fine-tuned CodeS at 1B-15B
// compared against much larger prompting-based baselines (emulated as
// base-corpus models with strong decoding but no SQL-centric incremental
// pre-training and no fine-tuning).
//
// Paper shape to reproduce: CodeS reaches or beats the "10x-100x larger"
// prompting baselines on both benchmarks despite its size.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"

namespace codes {
namespace {

constexpr int kMaxSamples = 80;

void Run() {
  bench::Banner("Figure 1: accuracy vs model size (Spider EX% | BIRD EX%)");
  auto spider = BuildSpiderLike();
  auto bird = BuildBirdLike();
  LmZoo zoo;

  bench::TablePrinter table({30, 12, 10, 10});
  table.Row({"Model", "params (B)", "Spider", "BIRD"});
  table.Separator();

  EvalOptions options;
  options.max_samples = kMaxSamples;
  options.num_threads = 0;  // parallel evaluation: shard dev set over all cores

  // Prompting-based large-model proxies (few-shot, no SQL pre-training).
  struct Proxy {
    const char* name;
    double params;
    double extra_noise;
  };
  const Proxy kProxies[] = {
      {"ChatGPT-class proxy (175B)", 175.0, 0.06},
      {"GPT-4-class proxy (>>175B)", 1000.0, 0.00},
  };
  for (const auto& proxy : kProxies) {
    PipelineConfig config;
    config.size = ModelSize::k15B;  // largest available capacity profile
    config.icl_shots = 5;
    config.extra_model_noise = proxy.extra_noise;
    CodesPipeline sp(config, zoo.BaseFor(config.size));
    sp.TrainClassifier(spider);
    sp.SetDemonstrationPool(spider.train);
    auto m_spider = EvaluateDevSet(spider, sp.PredictorFor(spider), options);
    PipelineConfig bird_config = config;
    bird_config.use_external_knowledge = true;
    CodesPipeline bp(bird_config, zoo.BaseFor(config.size));
    bp.TrainClassifier(bird);
    bp.SetDemonstrationPool(bird.train);
    auto m_bird = EvaluateDevSet(bird, bp.PredictorFor(bird), options);
    table.Row({proxy.name, FormatDouble(proxy.params, 0),
               bench::Pct(m_spider.ex), bench::Pct(m_bird.ex)});
  }

  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);
  for (int i = 0; i < count; ++i) {
    ModelSize size = sizes[i];
    PipelineConfig config;
    config.size = size;
    CodesPipeline sp(config, zoo.CodesFor(size));
    sp.TrainClassifier(spider);
    sp.FineTune(spider);
    auto m_spider = EvaluateDevSet(spider, sp.PredictorFor(spider), options);
    PipelineConfig bird_config = config;
    bird_config.use_external_knowledge = true;
    CodesPipeline bp(bird_config, zoo.CodesFor(size));
    bp.TrainClassifier(bird);
    bp.FineTune(bird);
    auto m_bird = EvaluateDevSet(bird, bp.PredictorFor(bird), options);
    table.Row({"SFT " + ModelSizeName(size),
               FormatDouble(ProfileFor(size).params_billion, 0),
               bench::Pct(m_spider.ex), bench::Pct(m_bird.ex)});
  }
  std::printf(
      "\npaper shape: SFT CodeS-7B/15B >= the 10x-100x larger prompting "
      "baselines on both benchmarks.\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
