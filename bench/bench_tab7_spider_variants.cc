// Reproduces Table 7: robustness of SFT CodeS on the Spider variants
// Spider-Syn, Spider-Realistic (EX%/TS%), and Spider-DK (EX%).
//
// Paper shape to reproduce: all variants cost accuracy relative to the
// clean dev set; larger models degrade more gracefully; the 3B model
// already beats weak baselines.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/model_zoo.h"
#include "core/pipeline.h"
#include "dataset/benchmark_builder.h"
#include "dataset/perturb.h"

namespace codes {
namespace {

void Run() {
  bench::Banner(
      "Table 7: SFT CodeS on Spider variants (Syn EX/TS | Realistic EX/TS | "
      "DK EX)");
  auto spider = BuildSpiderLike();
  auto syn = BuildSpiderSyn(spider, 11);
  auto realistic = BuildSpiderRealistic(spider, 12);
  auto dk = BuildSpiderDk(spider, 13);
  LmZoo zoo;

  bench::TablePrinter table({16, 8, 8, 8, 8, 8, 10});
  table.Row({"Method", "syn-EX", "syn-TS", "rea-EX", "rea-TS", "dk-EX",
             "clean-EX"});
  table.Separator();
  int count = 0;
  const ModelSize* sizes = AllModelSizes(&count);
  for (int i = 0; i < count; ++i) {
    ModelSize size = sizes[i];
    PipelineConfig config;
    config.size = size;
    CodesPipeline pipeline(config, zoo.CodesFor(size));
    pipeline.TrainClassifier(spider);
    pipeline.FineTune(spider);

    // Both option sets shard the dev set across every core (num_threads 0).
    EvalOptions with_ts;
    with_ts.compute_ts = true;
    with_ts.ts_instances = 2;
    with_ts.num_threads = 0;
    EvalOptions ex_only;
    ex_only.num_threads = 0;

    auto m_syn = EvaluateDevSet(syn, pipeline.PredictorFor(syn), with_ts);
    auto m_rea =
        EvaluateDevSet(realistic, pipeline.PredictorFor(realistic), with_ts);
    auto m_dk = EvaluateDevSet(dk, pipeline.PredictorFor(dk), ex_only);
    auto m_clean =
        EvaluateDevSet(spider, pipeline.PredictorFor(spider), ex_only);
    table.Row({"SFT " + ModelSizeName(size), bench::Pct(m_syn.ex),
               bench::Pct(m_syn.ts), bench::Pct(m_rea.ex),
               bench::Pct(m_rea.ts), bench::Pct(m_dk.ex),
               bench::Pct(m_clean.ex)});
  }
  std::printf(
      "\npaper reference (7B): Syn 76.9/70.0, Realistic 82.9/77.2, DK 72.0; "
      "clean Spider EX 85.4\n");
}

}  // namespace
}  // namespace codes

int main(int argc, char** argv) {
  codes::Run();
  codes::bench::WriteMetricsIfRequested(argc, argv);
  return 0;
}
