file(REMOVE_RECURSE
  "libcodes_linker.a"
)
