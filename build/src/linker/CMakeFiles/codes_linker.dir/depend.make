# Empty dependencies file for codes_linker.
# This may be replaced when dependencies are built.
