file(REMOVE_RECURSE
  "CMakeFiles/codes_linker.dir/schema_classifier.cc.o"
  "CMakeFiles/codes_linker.dir/schema_classifier.cc.o.d"
  "libcodes_linker.a"
  "libcodes_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
