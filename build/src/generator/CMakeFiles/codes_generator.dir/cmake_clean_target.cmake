file(REMOVE_RECURSE
  "libcodes_generator.a"
)
