file(REMOVE_RECURSE
  "CMakeFiles/codes_generator.dir/capacity.cc.o"
  "CMakeFiles/codes_generator.dir/capacity.cc.o.d"
  "CMakeFiles/codes_generator.dir/codes_model.cc.o"
  "CMakeFiles/codes_generator.dir/codes_model.cc.o.d"
  "libcodes_generator.a"
  "libcodes_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
