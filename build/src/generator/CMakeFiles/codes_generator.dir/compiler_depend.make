# Empty compiler generated dependencies file for codes_generator.
# This may be replaced when dependencies are built.
