# Empty dependencies file for codes_text.
# This may be replaced when dependencies are built.
