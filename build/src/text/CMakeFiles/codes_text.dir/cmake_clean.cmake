file(REMOVE_RECURSE
  "CMakeFiles/codes_text.dir/pattern.cc.o"
  "CMakeFiles/codes_text.dir/pattern.cc.o.d"
  "CMakeFiles/codes_text.dir/similarity.cc.o"
  "CMakeFiles/codes_text.dir/similarity.cc.o.d"
  "CMakeFiles/codes_text.dir/tokenize.cc.o"
  "CMakeFiles/codes_text.dir/tokenize.cc.o.d"
  "libcodes_text.a"
  "libcodes_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
