file(REMOVE_RECURSE
  "libcodes_text.a"
)
