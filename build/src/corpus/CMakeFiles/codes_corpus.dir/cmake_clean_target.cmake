file(REMOVE_RECURSE
  "libcodes_corpus.a"
)
