# Empty compiler generated dependencies file for codes_corpus.
# This may be replaced when dependencies are built.
