file(REMOVE_RECURSE
  "CMakeFiles/codes_corpus.dir/pretrain_corpus.cc.o"
  "CMakeFiles/codes_corpus.dir/pretrain_corpus.cc.o.d"
  "libcodes_corpus.a"
  "libcodes_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
