file(REMOVE_RECURSE
  "CMakeFiles/codes_retrieval.dir/demonstration_retriever.cc.o"
  "CMakeFiles/codes_retrieval.dir/demonstration_retriever.cc.o.d"
  "CMakeFiles/codes_retrieval.dir/value_retriever.cc.o"
  "CMakeFiles/codes_retrieval.dir/value_retriever.cc.o.d"
  "libcodes_retrieval.a"
  "libcodes_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
