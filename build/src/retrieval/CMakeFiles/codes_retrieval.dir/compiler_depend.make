# Empty compiler generated dependencies file for codes_retrieval.
# This may be replaced when dependencies are built.
