file(REMOVE_RECURSE
  "libcodes_retrieval.a"
)
