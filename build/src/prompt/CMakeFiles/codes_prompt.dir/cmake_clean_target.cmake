file(REMOVE_RECURSE
  "libcodes_prompt.a"
)
