# Empty dependencies file for codes_prompt.
# This may be replaced when dependencies are built.
