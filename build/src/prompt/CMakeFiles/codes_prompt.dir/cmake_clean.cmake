file(REMOVE_RECURSE
  "CMakeFiles/codes_prompt.dir/prompt_builder.cc.o"
  "CMakeFiles/codes_prompt.dir/prompt_builder.cc.o.d"
  "libcodes_prompt.a"
  "libcodes_prompt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_prompt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
