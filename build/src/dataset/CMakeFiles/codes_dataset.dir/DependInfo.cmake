
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/benchmark_builder.cc" "src/dataset/CMakeFiles/codes_dataset.dir/benchmark_builder.cc.o" "gcc" "src/dataset/CMakeFiles/codes_dataset.dir/benchmark_builder.cc.o.d"
  "/root/repo/src/dataset/db_generator.cc" "src/dataset/CMakeFiles/codes_dataset.dir/db_generator.cc.o" "gcc" "src/dataset/CMakeFiles/codes_dataset.dir/db_generator.cc.o.d"
  "/root/repo/src/dataset/domains.cc" "src/dataset/CMakeFiles/codes_dataset.dir/domains.cc.o" "gcc" "src/dataset/CMakeFiles/codes_dataset.dir/domains.cc.o.d"
  "/root/repo/src/dataset/perturb.cc" "src/dataset/CMakeFiles/codes_dataset.dir/perturb.cc.o" "gcc" "src/dataset/CMakeFiles/codes_dataset.dir/perturb.cc.o.d"
  "/root/repo/src/dataset/templates.cc" "src/dataset/CMakeFiles/codes_dataset.dir/templates.cc.o" "gcc" "src/dataset/CMakeFiles/codes_dataset.dir/templates.cc.o.d"
  "/root/repo/src/dataset/templates_join.cc" "src/dataset/CMakeFiles/codes_dataset.dir/templates_join.cc.o" "gcc" "src/dataset/CMakeFiles/codes_dataset.dir/templates_join.cc.o.d"
  "/root/repo/src/dataset/templates_nested.cc" "src/dataset/CMakeFiles/codes_dataset.dir/templates_nested.cc.o" "gcc" "src/dataset/CMakeFiles/codes_dataset.dir/templates_nested.cc.o.d"
  "/root/repo/src/dataset/value_pool.cc" "src/dataset/CMakeFiles/codes_dataset.dir/value_pool.cc.o" "gcc" "src/dataset/CMakeFiles/codes_dataset.dir/value_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/codes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/codes_text.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlengine/CMakeFiles/codes_sqlengine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
