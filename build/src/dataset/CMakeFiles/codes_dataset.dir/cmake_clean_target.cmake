file(REMOVE_RECURSE
  "libcodes_dataset.a"
)
