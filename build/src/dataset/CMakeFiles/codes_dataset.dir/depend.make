# Empty dependencies file for codes_dataset.
# This may be replaced when dependencies are built.
