file(REMOVE_RECURSE
  "CMakeFiles/codes_dataset.dir/benchmark_builder.cc.o"
  "CMakeFiles/codes_dataset.dir/benchmark_builder.cc.o.d"
  "CMakeFiles/codes_dataset.dir/db_generator.cc.o"
  "CMakeFiles/codes_dataset.dir/db_generator.cc.o.d"
  "CMakeFiles/codes_dataset.dir/domains.cc.o"
  "CMakeFiles/codes_dataset.dir/domains.cc.o.d"
  "CMakeFiles/codes_dataset.dir/perturb.cc.o"
  "CMakeFiles/codes_dataset.dir/perturb.cc.o.d"
  "CMakeFiles/codes_dataset.dir/templates.cc.o"
  "CMakeFiles/codes_dataset.dir/templates.cc.o.d"
  "CMakeFiles/codes_dataset.dir/templates_join.cc.o"
  "CMakeFiles/codes_dataset.dir/templates_join.cc.o.d"
  "CMakeFiles/codes_dataset.dir/templates_nested.cc.o"
  "CMakeFiles/codes_dataset.dir/templates_nested.cc.o.d"
  "CMakeFiles/codes_dataset.dir/value_pool.cc.o"
  "CMakeFiles/codes_dataset.dir/value_pool.cc.o.d"
  "libcodes_dataset.a"
  "libcodes_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
