file(REMOVE_RECURSE
  "CMakeFiles/codes_sqlengine.dir/ast.cc.o"
  "CMakeFiles/codes_sqlengine.dir/ast.cc.o.d"
  "CMakeFiles/codes_sqlengine.dir/catalog.cc.o"
  "CMakeFiles/codes_sqlengine.dir/catalog.cc.o.d"
  "CMakeFiles/codes_sqlengine.dir/database.cc.o"
  "CMakeFiles/codes_sqlengine.dir/database.cc.o.d"
  "CMakeFiles/codes_sqlengine.dir/executor.cc.o"
  "CMakeFiles/codes_sqlengine.dir/executor.cc.o.d"
  "CMakeFiles/codes_sqlengine.dir/fingerprint.cc.o"
  "CMakeFiles/codes_sqlengine.dir/fingerprint.cc.o.d"
  "CMakeFiles/codes_sqlengine.dir/lexer.cc.o"
  "CMakeFiles/codes_sqlengine.dir/lexer.cc.o.d"
  "CMakeFiles/codes_sqlengine.dir/parser.cc.o"
  "CMakeFiles/codes_sqlengine.dir/parser.cc.o.d"
  "CMakeFiles/codes_sqlengine.dir/result_table.cc.o"
  "CMakeFiles/codes_sqlengine.dir/result_table.cc.o.d"
  "CMakeFiles/codes_sqlengine.dir/value.cc.o"
  "CMakeFiles/codes_sqlengine.dir/value.cc.o.d"
  "libcodes_sqlengine.a"
  "libcodes_sqlengine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_sqlengine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
