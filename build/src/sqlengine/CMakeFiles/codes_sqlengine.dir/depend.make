# Empty dependencies file for codes_sqlengine.
# This may be replaced when dependencies are built.
