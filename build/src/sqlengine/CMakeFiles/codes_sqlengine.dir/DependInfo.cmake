
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqlengine/ast.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/ast.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/ast.cc.o.d"
  "/root/repo/src/sqlengine/catalog.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/catalog.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/catalog.cc.o.d"
  "/root/repo/src/sqlengine/database.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/database.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/database.cc.o.d"
  "/root/repo/src/sqlengine/executor.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/executor.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/executor.cc.o.d"
  "/root/repo/src/sqlengine/fingerprint.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/fingerprint.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/fingerprint.cc.o.d"
  "/root/repo/src/sqlengine/lexer.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/lexer.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/lexer.cc.o.d"
  "/root/repo/src/sqlengine/parser.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/parser.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/parser.cc.o.d"
  "/root/repo/src/sqlengine/result_table.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/result_table.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/result_table.cc.o.d"
  "/root/repo/src/sqlengine/value.cc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/value.cc.o" "gcc" "src/sqlengine/CMakeFiles/codes_sqlengine.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/codes_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
