file(REMOVE_RECURSE
  "libcodes_sqlengine.a"
)
