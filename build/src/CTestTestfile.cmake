# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("text")
subdirs("embed")
subdirs("index")
subdirs("sqlengine")
subdirs("dataset")
subdirs("corpus")
subdirs("lm")
subdirs("linker")
subdirs("retrieval")
subdirs("prompt")
subdirs("generator")
subdirs("augment")
subdirs("eval")
subdirs("core")
