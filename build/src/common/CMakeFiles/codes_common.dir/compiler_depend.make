# Empty compiler generated dependencies file for codes_common.
# This may be replaced when dependencies are built.
