file(REMOVE_RECURSE
  "libcodes_common.a"
)
