file(REMOVE_RECURSE
  "CMakeFiles/codes_common.dir/rng.cc.o"
  "CMakeFiles/codes_common.dir/rng.cc.o.d"
  "CMakeFiles/codes_common.dir/status.cc.o"
  "CMakeFiles/codes_common.dir/status.cc.o.d"
  "CMakeFiles/codes_common.dir/string_util.cc.o"
  "CMakeFiles/codes_common.dir/string_util.cc.o.d"
  "libcodes_common.a"
  "libcodes_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
