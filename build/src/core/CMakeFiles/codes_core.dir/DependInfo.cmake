
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/model_zoo.cc" "src/core/CMakeFiles/codes_core.dir/model_zoo.cc.o" "gcc" "src/core/CMakeFiles/codes_core.dir/model_zoo.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/codes_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/codes_core.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/codes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/generator/CMakeFiles/codes_generator.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/codes_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/codes_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/retrieval/CMakeFiles/codes_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/codes_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/lm/CMakeFiles/codes_lm.dir/DependInfo.cmake"
  "/root/repo/build/src/prompt/CMakeFiles/codes_prompt.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/codes_index.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/codes_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/dataset/CMakeFiles/codes_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/sqlengine/CMakeFiles/codes_sqlengine.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/codes_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
