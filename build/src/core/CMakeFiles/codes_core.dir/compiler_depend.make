# Empty compiler generated dependencies file for codes_core.
# This may be replaced when dependencies are built.
