file(REMOVE_RECURSE
  "libcodes_core.a"
)
