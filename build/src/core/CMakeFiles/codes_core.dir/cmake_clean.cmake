file(REMOVE_RECURSE
  "CMakeFiles/codes_core.dir/model_zoo.cc.o"
  "CMakeFiles/codes_core.dir/model_zoo.cc.o.d"
  "CMakeFiles/codes_core.dir/pipeline.cc.o"
  "CMakeFiles/codes_core.dir/pipeline.cc.o.d"
  "libcodes_core.a"
  "libcodes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
