# Empty dependencies file for codes_index.
# This may be replaced when dependencies are built.
