file(REMOVE_RECURSE
  "CMakeFiles/codes_index.dir/bm25_index.cc.o"
  "CMakeFiles/codes_index.dir/bm25_index.cc.o.d"
  "libcodes_index.a"
  "libcodes_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
