file(REMOVE_RECURSE
  "libcodes_index.a"
)
