file(REMOVE_RECURSE
  "CMakeFiles/codes_lm.dir/ngram_lm.cc.o"
  "CMakeFiles/codes_lm.dir/ngram_lm.cc.o.d"
  "libcodes_lm.a"
  "libcodes_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
