# Empty dependencies file for codes_lm.
# This may be replaced when dependencies are built.
