
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lm/ngram_lm.cc" "src/lm/CMakeFiles/codes_lm.dir/ngram_lm.cc.o" "gcc" "src/lm/CMakeFiles/codes_lm.dir/ngram_lm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/codes_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/codes_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
