file(REMOVE_RECURSE
  "libcodes_lm.a"
)
