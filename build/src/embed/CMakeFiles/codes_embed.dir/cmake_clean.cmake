file(REMOVE_RECURSE
  "CMakeFiles/codes_embed.dir/sentence_encoder.cc.o"
  "CMakeFiles/codes_embed.dir/sentence_encoder.cc.o.d"
  "libcodes_embed.a"
  "libcodes_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
