# Empty compiler generated dependencies file for codes_embed.
# This may be replaced when dependencies are built.
