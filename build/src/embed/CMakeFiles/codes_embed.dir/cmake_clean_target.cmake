file(REMOVE_RECURSE
  "libcodes_embed.a"
)
