# Empty dependencies file for codes_eval.
# This may be replaced when dependencies are built.
