file(REMOVE_RECURSE
  "libcodes_eval.a"
)
