file(REMOVE_RECURSE
  "CMakeFiles/codes_eval.dir/metrics.cc.o"
  "CMakeFiles/codes_eval.dir/metrics.cc.o.d"
  "libcodes_eval.a"
  "libcodes_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
