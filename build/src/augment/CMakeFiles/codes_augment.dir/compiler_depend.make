# Empty compiler generated dependencies file for codes_augment.
# This may be replaced when dependencies are built.
