file(REMOVE_RECURSE
  "CMakeFiles/codes_augment.dir/augmentation.cc.o"
  "CMakeFiles/codes_augment.dir/augmentation.cc.o.d"
  "libcodes_augment.a"
  "libcodes_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codes_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
