file(REMOVE_RECURSE
  "libcodes_augment.a"
)
