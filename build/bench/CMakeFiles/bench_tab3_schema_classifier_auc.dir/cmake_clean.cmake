file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_schema_classifier_auc.dir/bench_tab3_schema_classifier_auc.cc.o"
  "CMakeFiles/bench_tab3_schema_classifier_auc.dir/bench_tab3_schema_classifier_auc.cc.o.d"
  "bench_tab3_schema_classifier_auc"
  "bench_tab3_schema_classifier_auc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_schema_classifier_auc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
