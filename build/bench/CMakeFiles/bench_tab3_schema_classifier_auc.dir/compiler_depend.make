# Empty compiler generated dependencies file for bench_tab3_schema_classifier_auc.
# This may be replaced when dependencies are built.
