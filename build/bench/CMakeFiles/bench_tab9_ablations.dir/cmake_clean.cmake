file(REMOVE_RECURSE
  "CMakeFiles/bench_tab9_ablations.dir/bench_tab9_ablations.cc.o"
  "CMakeFiles/bench_tab9_ablations.dir/bench_tab9_ablations.cc.o.d"
  "bench_tab9_ablations"
  "bench_tab9_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab9_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
