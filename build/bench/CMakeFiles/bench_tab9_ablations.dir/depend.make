# Empty dependencies file for bench_tab9_ablations.
# This may be replaced when dependencies are built.
