file(REMOVE_RECURSE
  "CMakeFiles/bench_sqlengine.dir/bench_sqlengine.cc.o"
  "CMakeFiles/bench_sqlengine.dir/bench_sqlengine.cc.o.d"
  "bench_sqlengine"
  "bench_sqlengine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sqlengine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
