# Empty dependencies file for bench_sqlengine.
# This may be replaced when dependencies are built.
