# Empty compiler generated dependencies file for bench_tab4_incontext_learning.
# This may be replaced when dependencies are built.
