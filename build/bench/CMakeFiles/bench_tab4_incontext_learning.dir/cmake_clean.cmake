file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_incontext_learning.dir/bench_tab4_incontext_learning.cc.o"
  "CMakeFiles/bench_tab4_incontext_learning.dir/bench_tab4_incontext_learning.cc.o.d"
  "bench_tab4_incontext_learning"
  "bench_tab4_incontext_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_incontext_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
