# Empty dependencies file for bench_tab8_dr_spider.
# This may be replaced when dependencies are built.
