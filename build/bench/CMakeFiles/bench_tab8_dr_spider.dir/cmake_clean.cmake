file(REMOVE_RECURSE
  "CMakeFiles/bench_tab8_dr_spider.dir/bench_tab8_dr_spider.cc.o"
  "CMakeFiles/bench_tab8_dr_spider.dir/bench_tab8_dr_spider.cc.o.d"
  "bench_tab8_dr_spider"
  "bench_tab8_dr_spider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab8_dr_spider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
