file(REMOVE_RECURSE
  "CMakeFiles/bench_pretraining.dir/bench_pretraining.cc.o"
  "CMakeFiles/bench_pretraining.dir/bench_pretraining.cc.o.d"
  "bench_pretraining"
  "bench_pretraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pretraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
