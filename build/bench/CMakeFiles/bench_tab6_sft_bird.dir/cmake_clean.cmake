file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_sft_bird.dir/bench_tab6_sft_bird.cc.o"
  "CMakeFiles/bench_tab6_sft_bird.dir/bench_tab6_sft_bird.cc.o.d"
  "bench_tab6_sft_bird"
  "bench_tab6_sft_bird.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_sft_bird.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
