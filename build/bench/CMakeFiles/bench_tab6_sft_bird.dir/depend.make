# Empty dependencies file for bench_tab6_sft_bird.
# This may be replaced when dependencies are built.
