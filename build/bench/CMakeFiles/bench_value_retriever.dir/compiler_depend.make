# Empty compiler generated dependencies file for bench_value_retriever.
# This may be replaced when dependencies are built.
