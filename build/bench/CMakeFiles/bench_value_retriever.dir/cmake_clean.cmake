file(REMOVE_RECURSE
  "CMakeFiles/bench_value_retriever.dir/bench_value_retriever.cc.o"
  "CMakeFiles/bench_value_retriever.dir/bench_value_retriever.cc.o.d"
  "bench_value_retriever"
  "bench_value_retriever.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_retriever.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
