# Empty compiler generated dependencies file for bench_tab7_spider_variants.
# This may be replaced when dependencies are built.
