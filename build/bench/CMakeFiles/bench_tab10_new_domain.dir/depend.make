# Empty dependencies file for bench_tab10_new_domain.
# This may be replaced when dependencies are built.
