file(REMOVE_RECURSE
  "CMakeFiles/bench_tab10_new_domain.dir/bench_tab10_new_domain.cc.o"
  "CMakeFiles/bench_tab10_new_domain.dir/bench_tab10_new_domain.cc.o.d"
  "bench_tab10_new_domain"
  "bench_tab10_new_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab10_new_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
