# Empty dependencies file for bench_tab5_sft_spider.
# This may be replaced when dependencies are built.
