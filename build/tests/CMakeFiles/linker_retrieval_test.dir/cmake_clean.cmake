file(REMOVE_RECURSE
  "CMakeFiles/linker_retrieval_test.dir/linker_retrieval_test.cc.o"
  "CMakeFiles/linker_retrieval_test.dir/linker_retrieval_test.cc.o.d"
  "linker_retrieval_test"
  "linker_retrieval_test.pdb"
  "linker_retrieval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linker_retrieval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
