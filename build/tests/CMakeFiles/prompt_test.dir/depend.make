# Empty dependencies file for prompt_test.
# This may be replaced when dependencies are built.
