file(REMOVE_RECURSE
  "CMakeFiles/prompt_test.dir/prompt_test.cc.o"
  "CMakeFiles/prompt_test.dir/prompt_test.cc.o.d"
  "prompt_test"
  "prompt_test.pdb"
  "prompt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prompt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
