file(REMOVE_RECURSE
  "CMakeFiles/embed_index_test.dir/embed_index_test.cc.o"
  "CMakeFiles/embed_index_test.dir/embed_index_test.cc.o.d"
  "embed_index_test"
  "embed_index_test.pdb"
  "embed_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embed_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
