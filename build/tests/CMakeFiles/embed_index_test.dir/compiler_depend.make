# Empty compiler generated dependencies file for embed_index_test.
# This may be replaced when dependencies are built.
