# Empty dependencies file for sqlengine_test.
# This may be replaced when dependencies are built.
