file(REMOVE_RECURSE
  "CMakeFiles/sqlengine_test.dir/sqlengine_test.cc.o"
  "CMakeFiles/sqlengine_test.dir/sqlengine_test.cc.o.d"
  "sqlengine_test"
  "sqlengine_test.pdb"
  "sqlengine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlengine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
