file(REMOVE_RECURSE
  "CMakeFiles/lm_corpus_test.dir/lm_corpus_test.cc.o"
  "CMakeFiles/lm_corpus_test.dir/lm_corpus_test.cc.o.d"
  "lm_corpus_test"
  "lm_corpus_test.pdb"
  "lm_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
