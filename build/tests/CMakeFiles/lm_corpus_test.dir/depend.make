# Empty dependencies file for lm_corpus_test.
# This may be replaced when dependencies are built.
