# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/sqlengine_test[1]_include.cmake")
include("/root/repo/build/tests/embed_index_test[1]_include.cmake")
include("/root/repo/build/tests/lm_corpus_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/perturb_test[1]_include.cmake")
include("/root/repo/build/tests/linker_retrieval_test[1]_include.cmake")
include("/root/repo/build/tests/prompt_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/augment_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
