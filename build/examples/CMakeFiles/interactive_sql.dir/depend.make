# Empty dependencies file for interactive_sql.
# This may be replaced when dependencies are built.
