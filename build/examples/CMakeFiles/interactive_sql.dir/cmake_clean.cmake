file(REMOVE_RECURSE
  "CMakeFiles/interactive_sql.dir/interactive_sql.cpp.o"
  "CMakeFiles/interactive_sql.dir/interactive_sql.cpp.o.d"
  "interactive_sql"
  "interactive_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
