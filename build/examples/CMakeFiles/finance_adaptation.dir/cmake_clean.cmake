file(REMOVE_RECURSE
  "CMakeFiles/finance_adaptation.dir/finance_adaptation.cpp.o"
  "CMakeFiles/finance_adaptation.dir/finance_adaptation.cpp.o.d"
  "finance_adaptation"
  "finance_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finance_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
