# Empty dependencies file for finance_adaptation.
# This may be replaced when dependencies are built.
